"""Length-framed wire protocol for shipping delta exports over TCP.

Every message travels as one frame::

    u32 frame_length | frame

    frame := u32 header_length | header (UTF-8 JSON) | blob*

The header is a small JSON object with a ``type`` field; binary counter
payloads ride as raw blobs after the header, their lengths listed in the
header's ``blobs`` array (in order).  Keeping counters out of the JSON
avoids base64 inflation, and :func:`decode_message` hands blobs back as
zero-copy :class:`memoryview` slices over the one received frame buffer
— a multi-MiB counter slab is never copied just to be parsed.

Message types
-------------

``hello``   (site → coordinator): ``site_id``, ``incarnation``,
            ``version``, a ``role`` — ``"site"`` for a leaf observer,
            ``"uplink"`` for a child coordinator re-exporting
            aggregated deltas up a federation tree — and, from v2
            peers, ``encodings`` (payload encodings the site can
            produce, preference first) plus ``features`` (``"batch"``:
            the site may coalesce several retained exports into one
            frame).  First frame on every connection.
``welcome`` (coordinator → site): ``sequence`` (last applied for the
            site), ``durable`` (last checkpoint-covered), and — only
            answering a hello that advertised them — the negotiated
            ``encodings`` (the coordinator's pick, see
            :func:`~repro.streams.net.codec.negotiate_encodings`) and
            ``features``.  The site prunes retained exports ≤
            ``durable`` and re-ships every retained export >
            ``sequence`` — the re-sync that makes coordinator fail-over
            transparent.
``delta``   (site → coordinator): ``site_id``, ``sequence``,
            ``streams`` (names, in blob order); blobs are the delta
            counter payloads.  V2 extensions, both optional: a
            per-blob ``encodings`` list (aligned with ``streams``;
            absent = all dense, the v1 payload), ``first_sequence``
            marking a *batched* frame whose payloads are the linearity
            sum of exports ``first_sequence..sequence`` (absent =
            ``sequence``, an unbatched frame), and ``window_at`` — the
            window watermark the export was cut at, so a windowed
            coordinator buckets the deltas by time (absent = all-time
            fold only).
``ack``     (coordinator → site): ``sequence`` (the site's last applied
            sequence *after* handling the frame), ``durable``.  An ack
            whose ``sequence`` is below the just-shipped export signals
            a gap (or, for a batch, an overlap); the site rewinds and
            re-ships from ``sequence``.
``error``   (either direction): ``message``; the connection closes.

Query-session messages (client → query server on the coordinator's
``query_port``; the handshake is the same hello/welcome, with
``role: "query"``):

``query``        ``id`` (client-chosen request id echoed in the
                 answer), ``tenant``, exactly one of ``expressions``
                 (set-expression texts) or ``streams`` (a plain union),
                 ``epsilon``, optional ``window``.
``query_result`` ``id``, ``kind`` (``"expression"``/``"union"``),
                 ``results`` (one estimate object per input), and
                 ``position`` — the engine's
                 ``(updates_processed, mutation_epoch)`` snapshot token
                 the whole batch was answered at.
``query_error``  ``id`` (``-1`` when the request id could not be
                 parsed), ``error`` (a machine-readable kind, e.g.
                 ``"unknown-stream"``/``"rate-limited"``), ``message``,
                 plus kind-specific payload fields (``unknown``/
                 ``known`` name lists, ``retry_after``).  Unlike the
                 ingest ``error`` frame this does **not** close the
                 connection — framing is length-prefixed, so a bad
                 request never corrupts the stream.

All integers are big-endian.  Frames above ``max_bytes`` (default
64 MiB) are rejected before allocation — a garbage length prefix cannot
make either endpoint swallow gigabytes.

Version 2 changes only *header fields* — the frame layout is untouched
and every new field is optional, so v1 peers interoperate without a
flag day in either rollout order: a hello without ``encodings`` gets a
v1 welcome and ships dense, unbatched frames, the coordinator accepts
any version in :data:`SUPPORTED_VERSIONS`, and a v2 site that offers
no v2 capability announces ``version: 1`` outright — acceptable to a
genuine v1 coordinator build, which knows no other version.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReproError
from repro.streams.distributed import DeltaExport
from repro.streams.net import codec

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "MAX_FRAME_BYTES",
    "ROLES",
    "FEATURES",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "read_message",
    "write_message",
    "hello_message",
    "welcome_message",
    "delta_message",
    "ack_message",
    "error_message",
    "export_from_message",
    "MAX_QUERY_ITEMS",
    "QueryRequest",
    "query_message",
    "query_result_message",
    "query_error_message",
    "query_from_message",
]

PROTOCOL_VERSION = 2

#: Hello versions this endpoint accepts.  V2 is a pure field-level
#: extension of v1, so both speak the same frames.
SUPPORTED_VERSIONS = (1, 2)

#: Optional capabilities negotiated in the hello/welcome handshake.
#: ``"batch"``: the site may coalesce several consecutive retained
#: exports into one delta frame (summed by linearity, ``first_sequence``
#: set); the coordinator acks the batch's max sequence.
FEATURES = ("batch",)

#: Default refusal threshold for a single frame.  Far above any sane
#: delta (a 512-sketch, 16-column synopsis is ~4 MiB per stream) but
#: small enough that a corrupt length prefix fails fast.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(ReproError, ValueError):
    """A frame or message violated the wire protocol."""


# -- message encoding ---------------------------------------------------------


def encode_message(header: dict, blobs: Sequence[bytes] = ()) -> bytes:
    """Serialise ``header`` plus binary ``blobs`` into one frame payload."""
    head = dict(header)
    head["blobs"] = [len(blob) for blob in blobs]
    header_bytes = json.dumps(head, separators=(",", ":")).encode("utf-8")
    return b"".join(
        [_LENGTH.pack(len(header_bytes)), header_bytes, *blobs]
    )


def decode_message(payload: bytes) -> tuple[dict, list[memoryview]]:
    """Inverse of :func:`encode_message`; validates structure strictly.

    Blobs come back as **zero-copy** :class:`memoryview` slices over the
    one frame buffer — at the default shape a delta frame carries
    multi-MiB counter slabs, and slicing them out as ``bytes`` used to
    double the peak allocation per frame.  Memoryviews compare equal to
    bytes and feed ``np.frombuffer``/``zlib`` directly; call ``bytes()``
    only where a blob must outlive the frame (retention), which the
    fold path never needs.
    """
    if len(payload) < _LENGTH.size:
        raise ProtocolError("frame too short for a header length")
    (header_length,) = _LENGTH.unpack_from(payload)
    offset = _LENGTH.size
    if offset + header_length > len(payload):
        raise ProtocolError("frame shorter than its declared header")
    view = memoryview(payload)
    try:
        header = json.loads(bytes(view[offset : offset + header_length]))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparseable message header: {exc}") from exc
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError("message header must be an object with 'type'")
    offset += header_length
    blobs: list[memoryview] = []
    for length in header.pop("blobs", []):
        if not isinstance(length, int) or length < 0:
            raise ProtocolError("blob lengths must be non-negative integers")
        if offset + length > len(payload):
            raise ProtocolError("frame shorter than its declared blobs")
        blobs.append(view[offset : offset + length])
        offset += length
    if offset != len(payload):
        raise ProtocolError("frame has trailing bytes beyond declared blobs")
    return header, blobs


# -- asyncio framing ----------------------------------------------------------


async def write_message(
    writer: asyncio.StreamWriter, header: dict, blobs: Sequence[bytes] = ()
) -> int:
    """Frame and send one message; returns the bytes written."""
    payload = encode_message(header, blobs)
    writer.write(_LENGTH.pack(len(payload)) + payload)
    await writer.drain()
    return _LENGTH.size + len(payload)


async def read_message(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> tuple[dict, list[bytes], int]:
    """Read one framed message; returns ``(header, blobs, bytes_read)``.

    Raises :class:`asyncio.IncompleteReadError` when the peer closes
    mid-frame (the caller treats that as a dropped connection, never as
    a partially applied message) and :class:`ProtocolError` on malformed
    or oversized frames.
    """
    prefix = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(prefix)
    if length > max_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    payload = await reader.readexactly(length)
    header, blobs = decode_message(payload)
    return header, blobs, _LENGTH.size + length


# -- message constructors -----------------------------------------------------


#: Valid values for the hello ``role`` field.  ``"site"`` is a leaf
#: observer; ``"uplink"`` is a child *coordinator* re-exporting its
#: aggregated deltas up a federation tree; ``"query"`` opens a
#: query session against the serving front end
#: (:mod:`repro.streams.serving`) — the ingest port refuses it with a
#: pointer at the query port, so a misconfigured client fails loudly
#: instead of shipping garbage deltas.  For the ingest roles the fold
#: path is identical (deltas are deltas); the role only feeds transport
#: stats and diagnostics, so version 1 peers that omit it stay
#: compatible.
ROLES = ("site", "uplink", "query")


def hello_message(
    site_id: str,
    incarnation: str,
    role: str = "site",
    *,
    encodings: Sequence[str] = (),
    features: Sequence[str] = (),
) -> dict:
    """The session-opening frame.

    ``encodings``/``features`` advertise v2 capabilities; leaving both
    empty produces a hello that is field-for-field what a v1 peer sends
    — version number included — and the coordinator answers it with a
    v1 welcome: dense, unbatched frames both directions.  Announcing
    version 1 in that case is what keeps the rollout order free: a site
    configured with ``encodings=()`` can talk to a genuine v1
    coordinator build, which accepts only ``version == 1``.
    """
    if role not in ROLES:
        raise ValueError(f"role must be one of {ROLES}, got {role!r}")
    header = {
        "type": "hello",
        "site_id": site_id,
        "incarnation": incarnation,
        "role": role,
        "version": PROTOCOL_VERSION if (encodings or features) else 1,
    }
    if encodings:
        header["encodings"] = list(encodings)
    if features:
        unknown = [f for f in features if f not in FEATURES]
        if unknown:
            raise ValueError(f"unknown features {unknown} (have {FEATURES})")
        header["features"] = list(features)
    return header


def welcome_message(
    sequence: int,
    durable: int,
    *,
    encodings: Sequence[str] | None = None,
    features: Sequence[str] | None = None,
) -> dict:
    """The coordinator's handshake answer.

    ``encodings`` is the coordinator's pick — the subset of the hello's
    advertisement the site may use, preference first; ``None`` (for a
    v1 hello) omits the field entirely so old peers see exactly the
    welcome they always did.
    """
    header = {"type": "welcome", "sequence": sequence, "durable": durable}
    if encodings is not None:
        header["encodings"] = list(encodings)
    if features is not None:
        header["features"] = list(features)
    return header


def delta_message(
    export: DeltaExport,
    allowed_encodings: Sequence[str] = codec.DENSE_ONLY,
    *,
    compress_level: int = 6,
) -> tuple[dict, list[bytes]]:
    """Header and blobs for one delta export (blobs in ``streams`` order).

    Each payload is encoded independently through
    :func:`~repro.streams.net.codec.encode_delta`, choosing the smallest
    allowed encoding per blob; the per-blob choices ride in the header's
    ``encodings`` list.  With the default dense-only allowance the
    header is field-for-field the v1 message.  A batched export
    (``first_sequence < sequence``) adds ``first_sequence``.
    """
    streams = sorted(export.payloads)
    header = {
        "type": "delta",
        "site_id": export.site_id,
        "incarnation": export.incarnation,
        "sequence": export.sequence,
        "streams": streams,
    }
    if export.first_sequence and export.first_sequence != export.sequence:
        header["first_sequence"] = export.first_sequence
    if export.window_at is not None:
        header["window_at"] = export.window_at
    blobs = []
    encodings = []
    for name in streams:
        encoding, blob = codec.encode_delta(
            export.payloads[name],
            allowed_encodings,
            compress_level=compress_level,
        )
        encodings.append(encoding)
        blobs.append(blob)
    if any(encoding != "dense" for encoding in encodings):
        header["encodings"] = encodings
    return header, blobs


def ack_message(sequence: int, durable: int) -> dict:
    return {"type": "ack", "sequence": sequence, "durable": durable}


def error_message(message: str) -> dict:
    return {"type": "error", "message": message}


def export_from_message(header: dict, blobs: Sequence[bytes]) -> DeltaExport:
    """Rebuild a :class:`DeltaExport` from a decoded ``delta`` message.

    The export keeps the blobs exactly as received (memoryviews from
    :func:`decode_message` stay zero-copy) together with the per-stream
    wire encodings; decoding to counters happens at fold time in
    :meth:`~repro.streams.distributed.Coordinator.collect`, where the
    sparse fast path can skip the dense slab entirely.
    """
    if header.get("type") != "delta":
        raise ProtocolError(f"expected a delta message, got {header.get('type')!r}")
    streams = header.get("streams")
    site_id = header.get("site_id")
    sequence = header.get("sequence")
    incarnation = header.get("incarnation")
    if not isinstance(site_id, str) or not isinstance(sequence, int):
        raise ProtocolError("delta message needs a site_id and an int sequence")
    if not isinstance(incarnation, str) or not incarnation:
        raise ProtocolError("delta message needs a non-empty incarnation")
    if sequence < 1:
        raise ProtocolError("delta sequence numbers start at 1")
    if not isinstance(streams, list) or len(streams) != len(blobs):
        raise ProtocolError("delta stream names must align with payload blobs")
    if len(set(streams)) != len(streams):
        raise ProtocolError("delta stream names must be unique")
    first_sequence = header.get("first_sequence", sequence)
    if not isinstance(first_sequence, int) or not (
        1 <= first_sequence <= sequence
    ):
        raise ProtocolError(
            "first_sequence must be an int in [1, sequence] when present"
        )
    window_at = header.get("window_at", None)
    if window_at is not None:
        if isinstance(window_at, bool) or not isinstance(
            window_at, (int, float)
        ):
            raise ProtocolError("window_at must be a number when present")
        window_at = float(window_at)
        if window_at != window_at:  # NaN survives JSON via Infinity parsing
            raise ProtocolError("window_at must not be NaN")
    wire_encodings = header.get("encodings", None)
    if wire_encodings is None:
        encodings = {}
    else:
        if (
            not isinstance(wire_encodings, list)
            or len(wire_encodings) != len(streams)
            or any(e not in codec.WIRE_ENCODINGS for e in wire_encodings)
        ):
            raise ProtocolError(
                "delta encodings must name a known encoding per stream"
            )
        encodings = {
            name: encoding
            for name, encoding in zip(streams, wire_encodings)
            if encoding != "dense"
        }
    return DeltaExport(
        site_id=site_id,
        sequence=sequence,
        payloads=dict(zip(streams, blobs)),
        incarnation=incarnation,
        first_sequence=first_sequence,
        encodings=encodings,
        window_at=window_at,
    )


# -- query messages -----------------------------------------------------------


#: Most expressions (or union stream names) one query frame may carry.
#: Queries are evaluated synchronously on the server's event loop, so an
#: unbounded batch would let a single frame stall every other session.
MAX_QUERY_ITEMS = 64


@dataclass(frozen=True)
class QueryRequest:
    """One validated ``query`` message.

    ``kind`` is ``"expression"`` (``items`` are set-expression texts)
    or ``"union"`` (``items`` are stream names for a plain distinct-
    union estimate).  ``window`` is ``None`` for an all-time query.
    """

    id: int
    tenant: str
    kind: str
    items: tuple[str, ...]
    epsilon: float
    window: float | None = None


def query_message(
    request_id: int,
    tenant: str,
    *,
    expressions: Sequence[str] | None = None,
    streams: Sequence[str] | None = None,
    epsilon: float = 0.1,
    window: float | None = None,
) -> dict:
    """A query frame: exactly one of ``expressions`` or ``streams``."""
    if (expressions is None) == (streams is None):
        raise ValueError("pass exactly one of expressions= or streams=")
    header = {
        "type": "query",
        "id": int(request_id),
        "tenant": tenant,
        "epsilon": float(epsilon),
    }
    if expressions is not None:
        header["expressions"] = list(expressions)
    else:
        header["streams"] = list(streams)
    if window is not None:
        header["window"] = float(window)
    return header


def query_result_message(
    request_id: int,
    kind: str,
    results: Sequence[dict],
    position: Sequence[int],
) -> dict:
    """The answer to one query frame; ``results`` align with its items.

    ``position`` is the serving target's snapshot token — every result
    in the frame (and every other frame answered in the same drain) was
    computed against exactly this engine state.
    """
    return {
        "type": "query_result",
        "id": int(request_id),
        "kind": kind,
        "results": list(results),
        "position": list(position),
    }


def query_error_message(
    request_id: int,
    kind: str,
    message: str,
    *,
    details: dict | None = None,
) -> dict:
    """A typed per-request failure; the connection stays open.

    ``kind`` is machine-readable (see
    :data:`repro.streams.serving.QUERY_ERROR_KINDS`); ``details``
    carries kind-specific payload fields such as the ``unknown``/
    ``known`` name lists of an unknown-stream error or the
    ``retry_after`` hint of a rate limit.
    """
    header = {
        "type": "query_error",
        "id": int(request_id),
        "error": kind,
        "message": message,
    }
    for key, value in (details or {}).items():
        if key in header:
            raise ValueError(f"details must not override the {key!r} field")
        header[key] = value
    return header


def _query_number(header: dict, field: str) -> float | None:
    value = header.get(field, None)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"query {field} must be a number when present")
    value = float(value)
    if value != value:  # NaN (JSON parsers that admit NaN literals)
        raise ProtocolError(f"query {field} must not be NaN")
    return value


def query_from_message(header: dict) -> QueryRequest:
    """Validate a decoded ``query`` header strictly.

    Structural violations raise :class:`ProtocolError` (the frame is
    malformed); *semantic* problems — unknown tenant or stream names,
    out-of-range epsilon, rate limits — are the serving layer's job and
    come back as typed ``query_error`` frames instead.
    """
    if header.get("type") != "query":
        raise ProtocolError(
            f"expected a query message, got {header.get('type')!r}"
        )
    request_id = header.get("id")
    if isinstance(request_id, bool) or not isinstance(request_id, int):
        raise ProtocolError("query id must be an integer")
    if request_id < 0:
        raise ProtocolError("query id must be non-negative")
    tenant = header.get("tenant")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("query tenant must be a non-empty string")
    expressions = header.get("expressions", None)
    streams = header.get("streams", None)
    if (expressions is None) == (streams is None):
        raise ProtocolError(
            "query must carry exactly one of 'expressions' or 'streams'"
        )
    kind = "expression" if expressions is not None else "union"
    items = expressions if expressions is not None else streams
    if not isinstance(items, list) or not items:
        raise ProtocolError("query items must be a non-empty list")
    if len(items) > MAX_QUERY_ITEMS:
        raise ProtocolError(
            f"query carries {len(items)} items; at most "
            f"{MAX_QUERY_ITEMS} per frame"
        )
    if any(not isinstance(item, str) or not item for item in items):
        raise ProtocolError("query items must be non-empty strings")
    epsilon = _query_number(header, "epsilon")
    if epsilon is None:
        raise ProtocolError("query must carry an epsilon")
    window = _query_number(header, "window")
    return QueryRequest(
        id=request_id,
        tenant=tenant,
        kind=kind,
        items=tuple(items),
        epsilon=epsilon,
        window=window,
    )
