"""The set-intersection cardinality estimator (Section 3.5).

Identical in structure to the set-difference estimator; only the witness
condition changes: given that the chosen bucket is a singleton for
``A ∪ B``, the atomic estimate is 1 iff the bucket is a singleton for
*both* ``A`` and ``B`` (the single element belongs to both streams).  The
conditional witness probability is ``|A ∩ B| / |A ∪ B|``.
"""

from __future__ import annotations

import numpy as np

from repro.core.checks import singleton_mask, singleton_union_mask
from repro.core.family import SketchFamily
from repro.core.results import UnionEstimate, WitnessEstimate
from repro.core.sketch import TwoLevelHashSketch
from repro.core.witness import run_witness_estimator

__all__ = ["estimate_intersection", "atomic_intersection_estimate"]


def atomic_intersection_estimate(
    sketch_a: TwoLevelHashSketch, sketch_b: TwoLevelHashSketch, level: int
) -> int | None:
    """One sketch pair's atomic observation (``AtomicIntersectEstimator``).

    Returns ``None`` for ``noEstimate``, else 1 iff the bucket witnesses
    an element of ``A ∩ B``.
    """
    from repro.core.checks import singleton_bucket, singleton_union_bucket

    if not singleton_union_bucket(sketch_a, sketch_b, level):
        return None
    found_witness = singleton_bucket(sketch_a, level) and singleton_bucket(sketch_b, level)
    return 1 if found_witness else 0


def estimate_intersection(
    family_a: SketchFamily,
    family_b: SketchFamily,
    epsilon: float = 0.1,
    union_estimate: float | UnionEstimate | None = None,
    pool_levels: int = 1,
) -> WitnessEstimate:
    """Estimate ``|A ∩ B|`` from the two streams' sketch families.

    Parameters mirror :func:`repro.core.difference.estimate_difference`.
    """

    def witness_masks(slabs: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        slab_a, slab_b = slabs
        valid = singleton_union_mask(slab_a, slab_b)
        witness = singleton_mask(slab_a) & singleton_mask(slab_b)
        return valid, witness

    return run_witness_estimator(
        [family_a, family_b], witness_masks, epsilon, union_estimate,
        pool_levels=pool_levels,
    )
