"""Unit tests for continuous (standing) queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.errors import ReproError, UnknownQueryError
from repro.streams.continuous import ContinuousQueryProcessor
from repro.streams.engine import StreamEngine
from repro.streams.updates import Update

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=6)


def make_processor(num_sketches=96, seed=1):
    engine = StreamEngine(SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=seed))
    return ContinuousQueryProcessor(engine)


def feed(processor, stream, elements, delta=1):
    for element in elements:
        processor.process(Update(stream, int(element), delta))


class TestRegistration:
    def test_register_and_list(self):
        processor = make_processor()
        processor.register("q1", "A & B", every=100)
        processor.register("q2", "A - B", every=200)
        assert processor.query_names() == ["q1", "q2"]
        assert processor["q1"].expression.to_text() == "(A & B)"

    def test_duplicate_name_rejected(self):
        processor = make_processor()
        processor.register("q", "A", every=10)
        with pytest.raises(ReproError):
            processor.register("q", "B", every=10)

    def test_unregister(self):
        processor = make_processor()
        processor.register("q", "A", every=10)
        processor.unregister("q")
        assert processor.query_names() == []

    def test_unregister_unknown_name_raises_clear_error(self):
        processor = make_processor()
        processor.register("cpu", "A", every=10)
        with pytest.raises(UnknownQueryError, match="'nope'"):
            processor.unregister("nope")
        # The error names the registered queries to aid debugging ...
        with pytest.raises(ReproError, match="cpu"):
            processor.unregister("nope")
        # ... and stays catchable as the builtin KeyError.
        with pytest.raises(KeyError):
            processor.unregister("nope")
        assert processor.query_names() == ["cpu"]

    def test_getitem_unknown_name_raises_typed_error(self):
        """Every lookup path raises the typed error — a serving layer
        maps it to one protocol error kind (ISSUE-10 audit)."""
        processor = make_processor()
        processor.register("cpu", "A", every=10)
        with pytest.raises(UnknownQueryError, match="'nope'"):
            processor["nope"]
        with pytest.raises(ReproError, match="cpu"):
            processor["nope"]
        with pytest.raises(KeyError):
            processor["nope"]
        assert processor["cpu"].name == "cpu"

    def test_evaluate_now_unknown_name_raises_typed_error(self):
        processor = make_processor()
        processor.register("cpu", "A", every=10)
        feed(processor, "A", range(50))
        with pytest.raises(UnknownQueryError, match="'nope'"):
            processor.evaluate_now("nope")
        with pytest.raises(ReproError, match="cpu"):
            processor.evaluate_now("nope")
        # The typed error did not disturb the registered query.
        observation = processor.evaluate_now("cpu")
        assert observation.at_update == 50

    def test_validation(self):
        processor = make_processor()
        with pytest.raises(ValueError):
            processor.register("q", "A", every=0)
        with pytest.raises(ValueError):
            processor.register("q", "A", epsilon=0.0)


class TestCadence:
    def test_evaluates_every_n_updates(self):
        processor = make_processor()
        query = processor.register("q", "A", every=50)
        feed(processor, "A", range(170))
        assert len(query.history) == 3  # at updates 50, 100, 150
        assert [obs.at_update for obs in query.history] == [50, 100, 150]

    def test_queries_have_independent_cadence(self):
        processor = make_processor()
        fast = processor.register("fast", "A", every=30)
        slow = processor.register("slow", "A", every=90)
        feed(processor, "A", range(90))
        assert len(fast.history) == 3
        assert len(slow.history) == 1

    def test_evaluate_now(self):
        processor = make_processor()
        query = processor.register("q", "A", every=1_000_000)
        feed(processor, "A", range(10))
        observation = processor.evaluate_now("q")
        assert query.history == [observation]
        assert observation.at_update == 10

    def test_estimates_track_stream_growth(self):
        processor = make_processor(num_sketches=128)
        query = processor.register("q", "A", every=1000, epsilon=0.2)
        rng = np.random.default_rng(7)
        elements = rng.choice(2**20, size=3000, replace=False)
        feed(processor, "A", elements)
        values = [obs.value for obs in query.history]
        assert len(values) == 3
        assert values[0] < values[-1]
        assert abs(values[-1] - 3000) / 3000 < 0.4


class TestAlerts:
    def test_threshold_breach_fires_callback(self):
        processor = make_processor(num_sketches=128)
        fired = []
        query = processor.register(
            "watch",
            "A",
            every=500,
            epsilon=0.2,
            threshold=700,
            on_alert=lambda q, o: fired.append((q.name, o.value)),
        )
        rng = np.random.default_rng(8)
        elements = rng.choice(2**20, size=2000, replace=False)
        feed(processor, "A", elements)
        assert query.alerts  # stream grows past 700 distinct elements
        assert fired
        assert fired[0][0] == "watch"
        # Early observations (≤ 500 distinct) must not alert.
        assert query.history[0].value < 700 or query.history[0] in query.alerts

    def test_no_threshold_no_alerts(self):
        processor = make_processor()
        query = processor.register("q", "A", every=100)
        feed(processor, "A", range(300))
        assert query.alerts == []

    def test_deletions_can_clear_alert_condition(self):
        processor = make_processor(num_sketches=128)
        query = processor.register("q", "A", every=1000, epsilon=0.2, threshold=1500)
        rng = np.random.default_rng(9)
        elements = rng.choice(2**20, size=2000, replace=False)
        feed(processor, "A", elements)
        assert query.latest.value > 1500
        feed(processor, "A", elements[:2000], delta=-1)
        assert query.latest.value < 1500


class TestEdgeTriggeredAlerts:
    """Regression suite for the alert storm: a sustained breach pages on
    the rising edge only, unless periodic re-pages are opted into."""

    @staticmethod
    def _standing(threshold=10.0, realert_every=None):
        from repro.expr.parser import parse
        from repro.streams.continuous import StandingQuery

        return StandingQuery(
            name="q",
            expression=parse("A"),
            epsilon=0.1,
            every=1,
            threshold=threshold,
            on_alert=None,
            realert_every=realert_every,
        )

    @staticmethod
    def _obs(value, at=0):
        from types import SimpleNamespace

        from repro.streams.continuous import Observation

        return Observation(at_update=at, estimate=SimpleNamespace(value=value))

    def test_sustained_breach_fires_exactly_once(self):
        query = self._standing(threshold=10.0)
        fired = [query.record(self._obs(v)) for v in (5, 20, 25, 30, 40, 50)]
        assert fired == [False, True, False, False, False, False]
        assert len(query.alerts) == 1
        assert len(query.history) == 6

    def test_rearms_after_clearing(self):
        query = self._standing(threshold=10.0)
        fired = [query.record(self._obs(v)) for v in (20, 5, 30, 30, 5, 11)]
        assert fired == [True, False, True, False, False, True]
        assert len(query.alerts) == 3

    def test_realert_every_periodic_repage(self):
        query = self._standing(threshold=10.0, realert_every=3)
        fired = [query.record(self._obs(20)) for _ in range(7)]
        # breach run 1 (edge), then every 3rd after: runs 4 and 7
        assert fired == [True, False, False, True, False, False, True]
        assert len(query.alerts) == 3

    def test_realert_every_one_restores_per_evaluation_alerts(self):
        query = self._standing(threshold=10.0, realert_every=1)
        fired = [query.record(self._obs(20)) for _ in range(4)]
        assert fired == [True, True, True, True]

    def test_realert_every_validation(self):
        processor = make_processor()
        with pytest.raises(ValueError):
            processor.register("q", "A", threshold=1.0, realert_every=0)

    def test_processor_does_not_storm_on_sustained_breach(self):
        """End to end: a stream that stays far above threshold for many
        evaluation ticks produces exactly one page."""
        processor = make_processor(num_sketches=128)
        fired = []
        query = processor.register(
            "storm",
            "A",
            every=100,
            epsilon=0.2,
            threshold=300,
            on_alert=lambda q, o: fired.append(o.value),
        )
        rng = np.random.default_rng(77)
        elements = rng.choice(2**20, size=2000, replace=False)
        feed(processor, "A", elements)
        assert len(query.history) == 20  # evaluated every 100 updates
        assert len(fired) == 1
        assert len(query.alerts) == 1
        # clearing the condition re-arms the edge detector
        feed(processor, "A", elements, delta=-1)
        assert not query.currently_breached
        feed(processor, "A", elements)
        assert len(fired) == 2

    def test_windowed_standing_query_clears_as_cohort_ages_out(self):
        """A windowed standing query breaches during a burst, clears on
        its own once the burst ages out of the window, and pages again on
        the next burst — two alerts, no storm."""
        engine = StreamEngine(
            SketchSpec(num_sketches=128, shape=SHAPE, seed=5),
            window_span=10.0,
            bucket_width=5.0,
        )
        processor = ContinuousQueryProcessor(engine)
        fired = []
        query = processor.register(
            "burst",
            "A",
            every=100,
            epsilon=0.2,
            threshold=300,
            window=10.0,
            on_alert=lambda q, o: fired.append(o.value),
        )
        rng = np.random.default_rng(78)
        elements = rng.choice(2**20, size=1000, replace=False)
        # burst 1: 500 distinct elements around t = 1
        for element in elements[:500]:
            processor.observe(Update("A", int(element), 1), at=1.0)
        assert len(fired) == 1  # breached, paged once
        # sparse phase: few distinct elements while the burst ages out
        for step in range(200):
            processor.observe(
                Update("A", 1 + step % 5, 1), at=12.0 + step * 0.05
            )
        assert not query.currently_breached  # cleared without deletions
        # burst 2: new elements at t = 23 -> a fresh rising edge
        for element in elements[500:]:
            processor.observe(Update("A", int(element), 1), at=23.0)
        assert len(fired) == 2
        assert len(query.alerts) == 2

    def test_windowed_query_needs_windowed_engine(self):
        processor = make_processor()
        with pytest.raises(ValueError):
            processor.register("q", "A", window=5.0)
