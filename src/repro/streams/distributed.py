"""The distributed-streams model with stored coins, on a delta protocol.

The paper notes (Sections 1 and 4) that its estimators extend naturally to
the distributed model of Gibbons and Tirthapura: each stream (or part of a
stream) is observed by its own party, summarised locally, and the synopses
are shipped — e.g. periodically — to a central site where queries over the
whole collection are answered.

Two properties of the 2-level hash sketch make this work:

* **stored coins** — all sites draw their hash functions from the same
  :class:`~repro.core.family.SketchSpec` (a shared seed), so their
  sketches are comparable;
* **linearity** — a stream split across sites is summarised correctly by
  *adding* the sites' counter arrays, because the sketch of a multiset sum
  is the entrywise sum of sketches.

Earlier versions shipped each site's **cumulative** counters, which made
collecting from the same site twice double-count every update seen before
the first export.  Linearity offers the structural fix: a site now ships
:class:`DeltaExport` objects — the counter *diff* since its previous
export (:meth:`~repro.core.family.SketchFamily.diff_from`), tagged with
the site id and a monotone sequence number.  The coordinator applies each
``(site, sequence)`` at most once, in order, so

* re-collecting (a retransmit, a retried RPC) is **idempotent** — the
  duplicate is dropped, the merged synopsis is unchanged;
* a **gap** (a lost export) is detected instead of silently skipped
  (:class:`~repro.errors.DeltaSequenceError`);
* sites **retain** un-acknowledged exports, so a coordinator that
  restarted from a checkpoint can be re-synced from each site's last
  acknowledged sequence (:meth:`StreamSite.exports_after`).

:class:`StreamSite` plays the per-party observer; :class:`Coordinator`
collects delta exports and answers set-expression queries.  Both are
synchronous and in-process; :mod:`repro.streams.net` wraps the same
protocol objects in an asyncio TCP transport.
"""

from __future__ import annotations

import base64
import uuid
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.expression import estimate_expression
from repro.core.family import SketchFamily, SketchSpec
from repro.core.results import UnionEstimate, WitnessEstimate
from repro.core.union import estimate_union
from repro.errors import DeltaSequenceError, UnknownStreamError
from repro.expr.ast import SetExpression
from repro.expr.parser import parse
from repro.streams.engine import StreamEngine
from repro.streams.updates import Update

__all__ = ["DeltaExport", "StreamSite", "Coordinator", "coalesce_exports"]


@dataclass(frozen=True)
class DeltaExport:
    """One site's shippable unit: counter deltas since its previous export.

    ``payloads`` maps stream name to the serialised *delta* counters
    (:meth:`~repro.core.family.SketchFamily.to_bytes` of the diff family);
    streams whose counters did not change since the previous export are
    omitted.  ``sequence`` starts at 1 and increases by exactly one per
    :meth:`StreamSite.export` call, which is what makes retransmits
    detectable (and droppable) at the coordinator.  ``incarnation``
    scopes the numbering to one lifetime of the exporting site process:
    a restarted site starts a fresh incarnation (and fresh counters), so
    its sequence 1 can never be confused with — or dropped as a
    duplicate of — a previous life's.

    A **batch** export (:func:`coalesce_exports`) covers the contiguous
    sequence range ``first_sequence..sequence``; by linearity its
    payloads are the entrywise sums of the covered exports' deltas, so
    applying the batch is equivalent to applying each export in turn.
    ``first_sequence`` of 0 means the export covers just ``sequence``
    (the common, unbatched case).

    ``encodings`` maps stream name to the wire encoding of its payload
    (:mod:`repro.streams.net.codec`); streams absent from the mapping
    carry plain dense ``to_bytes`` slabs.  In-process exports are always
    dense — encodings appear only on exports rebuilt from v2 network
    frames, and :meth:`Coordinator.collect` decodes them at fold time.

    ``window_at`` stamps the export with the shipping site's window
    watermark: every update the deltas summarise was observed at or
    before that instant, and the site had already observed everything up
    to it when the export was cut.  A windowed coordinator folds the
    deltas into the bucket covering ``window_at``, so windowed queries
    at the root see federated traffic in the same buckets a co-located
    engine would have used.  ``None`` (unwindowed sites, older peers)
    folds into the all-time synopses only.
    """

    site_id: str
    sequence: int
    payloads: Mapping[str, bytes] = field(default_factory=dict)
    incarnation: str = ""
    first_sequence: int = 0
    encodings: Mapping[str, str] = field(default_factory=dict)
    window_at: float | None = None

    @property
    def is_empty(self) -> bool:
        """True iff the export carries no counter changes."""
        return not self.payloads

    @property
    def batch_start(self) -> int:
        """First sequence the export covers (== ``sequence`` unbatched)."""
        return self.first_sequence or self.sequence

    @property
    def batch_size(self) -> int:
        """How many per-export deltas this export's range covers."""
        return self.sequence - self.batch_start + 1

    def payload_bytes(self) -> int:
        """Total serialised counter bytes in this export."""
        return sum(len(payload) for payload in self.payloads.values())


def coalesce_exports(
    exports: Sequence[DeltaExport], spec: SketchSpec
) -> DeltaExport:
    """Sum consecutive exports from one site into a single batch export.

    Linearity is what makes this sound: each retained export is a
    counter diff, and the diff across the whole range is the entrywise
    sum of the per-export diffs — so one frame carrying the sums, tagged
    with the range ``first_sequence..sequence``, folds to exactly the
    state the individual exports would have.  Streams whose summed delta
    is all-zero are dropped (e.g. an increment in one export undone by a
    decrement in the next).

    The inputs must come from one site and incarnation, carry dense
    (unencoded) payloads, form a contiguous ascending sequence run —
    exactly the shape of a :meth:`StreamSite.exports_after` tail — and
    agree on ``window_at``.  The last condition is what keeps batching
    sound under windowing: exports cut at different watermarks belong in
    different ring buckets at the coordinator, so summing them would
    smear traffic across buckets; group a retained tail into equal-
    ``window_at`` runs before coalescing (:mod:`repro.streams.net` does).
    """
    if not exports:
        raise ValueError("cannot coalesce an empty export list")
    head = exports[0]
    for previous, current in zip(exports, exports[1:]):
        if current.site_id != head.site_id:
            raise ValueError(
                f"cannot coalesce exports from different sites "
                f"({head.site_id!r} and {current.site_id!r})"
            )
        if current.incarnation != head.incarnation:
            raise ValueError(
                f"cannot coalesce exports across incarnations of site "
                f"{head.site_id!r}"
            )
        if current.batch_start != previous.sequence + 1:
            raise ValueError(
                f"cannot coalesce non-consecutive exports: sequence "
                f"{current.batch_start} follows {previous.sequence}"
            )
        if current.window_at != head.window_at:
            raise ValueError(
                f"cannot coalesce exports cut at different window "
                f"watermarks ({head.window_at!r} and "
                f"{current.window_at!r}); batch equal-window_at runs only"
            )
    expected = spec.counter_payload_bytes
    totals: dict[str, np.ndarray] = {}
    for export in exports:
        if export.encodings:
            raise ValueError(
                "cannot coalesce wire-encoded exports; decode them first"
            )
        for stream, payload in export.payloads.items():
            if len(payload) != expected:
                raise ValueError(
                    f"stream {stream!r} payload is {len(payload)} bytes; "
                    f"the spec calls for {expected}"
                )
            delta = np.frombuffer(payload, dtype="<i8")
            total = totals.get(stream)
            if total is None:
                totals[stream] = delta.astype(np.int64)  # owned copy
            else:
                total += delta
    if len(exports) == 1:
        return exports[0]
    payloads = {
        stream: total.astype("<i8").tobytes()
        for stream, total in totals.items()
        if total.any()
    }
    return DeltaExport(
        site_id=head.site_id,
        sequence=exports[-1].sequence,
        payloads=payloads,
        incarnation=head.incarnation,
        first_sequence=head.batch_start,
        window_at=head.window_at,
    )


class StreamSite:
    """One observing party: summarises its local share of the streams.

    A thin wrapper over :class:`StreamEngine` that adds the ship-to-
    coordinator step.  :meth:`export` serialises the counter *delta* of
    every locally maintained synopsis since the previous export (the
    coins are shared via the spec, so only counters travel) and retains
    the export until :meth:`acknowledge` confirms the coordinator has it
    durably — a restarted coordinator re-syncs from the retained tail.

    ``engine`` makes the summarised state pluggable: any object exposing
    ``families() -> {stream: SketchFamily}`` can back a site — a
    :class:`StreamEngine` (the default), a
    :class:`~repro.streams.sharded.ShardedEngine` (parallel local
    ingest), or a :class:`Coordinator` (a mid-tree coordinator
    re-exporting its *aggregated* state to a parent — the uplink of a
    federation tree).  Exports always diff against the per-stream
    baseline of the previous export, so whatever the backing engine is,
    consecutive exports never overlap and sum to the full state.
    """

    def __init__(
        self,
        site_id: str,
        spec: SketchSpec,
        *,
        incarnation: str | None = None,
        engine=None,
    ) -> None:
        self.site_id = site_id
        self.spec = spec
        # One lifetime of this site process.  Sequence numbers are scoped
        # to it: a restarted site (fresh counters, sequence back at 0)
        # gets a fresh incarnation, so the coordinator can tell its new
        # exports from a previous life's numbering instead of silently
        # dropping them as duplicates.
        self.incarnation = incarnation or uuid.uuid4().hex
        self._engine = engine if engine is not None else StreamEngine(spec)
        self._sequence = 0
        # Counter snapshots as of the last export, per stream; the next
        # export diffs against these, so consecutive exports never overlap.
        self._shipped: dict[str, SketchFamily] = {}
        # sequence -> export, kept until acknowledged (fail-over replay).
        self._retained: dict[int, DeltaExport] = {}

    # -- observing ---------------------------------------------------------

    def observe(self, update: Update, at: float | None = None) -> None:
        """Observe one local update tuple.

        ``at`` (windowed backing engines only) is the update's
        timestamp; it routes through
        :meth:`~repro.streams.engine.StreamEngine.observe` so the update
        lands in the local window ring as well as the all-time synopsis.
        """
        if at is None:
            self._engine.process(update)
        else:
            self._engine.observe(update, at)

    def observe_many(self, updates: Iterable[Update]) -> None:
        """Observe a sequence of local updates."""
        self._engine.process_many(updates)

    @property
    def updates_observed(self) -> int:
        # Not every backing engine counts updates (a Coordinator fold
        # target, for instance, only ever sees deltas).
        return getattr(self._engine, "updates_processed", 0)

    # -- delta export ------------------------------------------------------

    @property
    def sequence(self) -> int:
        """Sequence number of the most recent export (0 before any)."""
        return self._sequence

    def export(self, window_at: float | None = None) -> DeltaExport:
        """Ship-ready delta: counter diffs since the previous export.

        Always advances the sequence, even when no counters changed (an
        empty export) — the coordinator's in-order check relies on the
        numbering having no holes.  The export is retained until
        :meth:`acknowledge`.

        ``window_at`` stamps the export with the watermark its deltas
        were cut at (see :class:`DeltaExport`).  When omitted, a
        windowed backing engine stamps its current
        :attr:`~repro.streams.engine.StreamEngine.window_clock`
        automatically; an unwindowed engine leaves it ``None``.
        """
        if window_at is not None:
            window_at = float(window_at)
            if window_at != window_at:  # NaN
                raise ValueError("window_at must not be NaN")
        elif getattr(self._engine, "is_windowed", False):
            clock = self._engine.window_clock
            if clock != float("-inf"):
                window_at = clock
        payloads: dict[str, bytes] = {}
        for name, family in self._engine.families().items():
            baseline = self._shipped.get(name)
            delta = family if baseline is None else family.diff_from(baseline)
            if delta.is_zero():
                continue
            payloads[name] = delta.to_bytes()
            self._shipped[name] = family.copy()
        self._sequence += 1
        export = DeltaExport(
            self.site_id,
            self._sequence,
            payloads,
            self.incarnation,
            window_at=window_at,
        )
        self._retained[export.sequence] = export
        return export

    def acknowledge(self, sequence: int) -> None:
        """Drop retained exports up to and including ``sequence``.

        Call with the sequence the coordinator has *durably* applied
        (folded and checkpointed, for the network transport; simply
        applied, for in-process use).  Exports above ``sequence`` stay
        available for :meth:`exports_after` re-sync.
        """
        for retained in [seq for seq in self._retained if seq <= sequence]:
            del self._retained[retained]

    def exports_after(self, sequence: int) -> list[DeltaExport]:
        """Retained exports with a sequence above ``sequence``, in order.

        The re-sync path: a coordinator that greets the site with its
        last applied sequence gets every retained export it has not
        seen, oldest first.
        """
        return [
            self._retained[seq]
            for seq in sorted(self._retained)
            if seq > sequence
        ]

    @property
    def retained_exports(self) -> int:
        """How many exports are held for potential re-delivery."""
        return len(self._retained)

    # -- fail-over state ---------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serialisable export machinery state (checkpoint payload).

        Captures everything needed to resume this site's delta numbering
        after a process restart *without* starting a new incarnation: the
        incarnation id, the sequence counter, the per-stream shipped
        baselines, and the retained (not yet durably acknowledged)
        exports.  Counter payloads are base64-encoded so the whole state
        rides inside a checkpoint manifest's ``extra`` mapping.  The
        backing engine's counters are *not* included — they are
        checkpointed separately; restoring both from the same checkpoint
        keeps baselines and counters consistent.
        """
        encode = lambda blob: base64.b64encode(blob).decode("ascii")  # noqa: E731
        return {
            "site_id": self.site_id,
            "incarnation": self.incarnation,
            "sequence": self._sequence,
            "baselines": {
                name: encode(family.to_bytes())
                for name, family in self._shipped.items()
            },
            "retained": [
                {
                    "sequence": export.sequence,
                    "payloads": {
                        name: encode(payload)
                        for name, payload in export.payloads.items()
                    },
                    "window_at": export.window_at,
                }
                for export in (
                    self._retained[seq] for seq in sorted(self._retained)
                )
            ],
        }

    @classmethod
    def from_state(
        cls, state: Mapping, spec: SketchSpec, *, engine=None
    ) -> "StreamSite":
        """Rebuild a site from :meth:`to_state` output (checkpoint restore).

        The restored site keeps its previous **incarnation** — that is
        the point: a coordinator's uplink restored from a checkpoint must
        continue the very numbering its parent already tracks, so the
        parent sees neither a gap nor a duplicate-shadowing fresh life.
        """
        site = cls(
            str(state["site_id"]),
            spec,
            incarnation=str(state["incarnation"]),
            engine=engine,
        )
        site._sequence = int(state["sequence"])
        site._shipped = {
            str(name): SketchFamily.from_bytes(
                base64.b64decode(payload), spec
            )
            for name, payload in dict(state.get("baselines", {})).items()
        }
        for entry in state.get("retained", ()):
            sequence = int(entry["sequence"])
            window_at = entry.get("window_at")
            site._retained[sequence] = DeltaExport(
                site.site_id,
                sequence,
                {
                    str(name): base64.b64decode(payload)
                    for name, payload in dict(entry["payloads"]).items()
                },
                site.incarnation,
                window_at=None if window_at is None else float(window_at),
            )
        return site


class Coordinator:
    """Central site: merges delta exports and answers cardinality queries.

    The fold target is pluggable: by default the coordinator keeps a
    plain per-stream :class:`~repro.core.family.SketchFamily` map, but
    ``engine`` accepts any engine exposing ``merge_delta`` /
    ``families`` / ``stream_names`` / ``adopt_family`` / ``query`` /
    ``query_union`` — in particular a
    :class:`~repro.streams.sharded.ShardedEngine`, so a leaf
    coordinator of a federation tree folds incoming network deltas
    across parallel shards while queries still merge exactly by
    linearity.  Sequence/incarnation bookkeeping is identical either
    way; only where the counters land differs.
    """

    def __init__(self, spec: SketchSpec, *, engine=None) -> None:
        self.spec = spec
        self._engine = engine
        self._families: dict[str, SketchFamily] = {}
        # site id -> incarnation -> last applied sequence.  Sequences are
        # scoped to one lifetime of a site process; keeping the history
        # per incarnation means a site id that restarts (or even
        # alternates between two lives) can never have an export dropped
        # as another life's duplicate, nor replayed twice.
        self._applied: dict[str, dict[str, int]] = {}
        # site id -> incarnation that most recently applied an export.
        self._current: dict[str, str] = {}
        self._collects_applied = 0
        self._duplicates_dropped = 0

    # -- collection --------------------------------------------------------

    def collect(self, export: DeltaExport) -> bool:
        """Fold one site's delta export into the global synopses.

        Returns ``True`` when the export was applied, ``False`` when it
        was a duplicate (whole covered range at or below the site's last
        applied sequence) and therefore dropped — collecting the same
        export any number of times leaves the merged state identical.  A
        sequence *gap* raises
        :class:`~repro.errors.DeltaSequenceError`: applying it would
        silently lose the missing exports' updates.  So does a **batch**
        export whose range only partially overlaps the applied prefix —
        its summed payloads cannot be split, so the site must rewind and
        re-batch from the first unapplied sequence.

        A stream observed at several sites ends up with the sum of the
        sites' deltas — by linearity, exactly the sketch of the full
        stream.  Payloads carrying a v2 wire encoding are decoded here,
        at fold time; sparse ones scatter straight into an existing
        synopsis without materialising a dense slab.  Decoding is
        all-or-nothing: every payload is decoded and validated before
        any synopsis is touched, so a malformed blob
        (:class:`~repro.streams.net.codec.CodecError`, a bad slab size)
        leaves the coordinator exactly as it was — the site can re-ship
        the same export without any stream being folded twice.
        """
        last = self.applied_sequence(export.site_id, export.incarnation)
        if export.sequence <= last:
            self._duplicates_dropped += 1
            return False
        first = export.batch_start
        if first != last + 1:
            if first > last + 1:
                raise DeltaSequenceError(
                    f"site {export.site_id!r} shipped export sequence "
                    f"{first}..{export.sequence} but the last applied one "
                    f"is {last}; exports {last + 1}..{first - 1} are "
                    f"missing (re-sync the site before collecting further)"
                )
            raise DeltaSequenceError(
                f"site {export.site_id!r} shipped a batch covering "
                f"{first}..{export.sequence} but exports up to {last} are "
                f"already applied; the batch cannot be split, so re-batch "
                f"from {last + 1}"
            )
        # Decode every payload before touching any synopsis.  Fold-time
        # decode failure is an expected path under wire-format v2 (the
        # server answers with an error and the site re-ships the same
        # export after re-syncing); folding stream by stream would leave
        # a failed export half-applied with applied_sequence unadvanced,
        # and the re-shipped copy would then double-count the streams
        # folded before the failure.
        decoded = [
            (
                stream,
                self._decode_payload(
                    stream, payload, export.encodings.get(stream, "dense")
                ),
            )
            for stream, payload in export.payloads.items()
        ]
        for stream, incoming in decoded:
            self._apply_decoded(stream, incoming, at=export.window_at)
        site_history = self._applied.setdefault(export.site_id, {})
        site_history[export.incarnation] = export.sequence
        self._current[export.site_id] = export.incarnation
        # A batch counts as every export it covers: the logical tally
        # stays comparable whether or not the uplink coalesced.
        self._collects_applied += export.sequence - first + 1
        return True

    def _decode_payload(self, stream: str, payload: bytes, encoding: str):
        """Materialise one wire payload; never touches coordinator state.

        Returns the decoded delta :class:`SketchFamily`, or — for a
        sparse encoding — the validated ``(indices, values)`` cell pair,
        so :meth:`_apply_decoded` can scatter it straight into an
        existing plain-map synopsis (the fast path: no dense
        intermediate slab).  All payload validation happens here, which
        is what lets :meth:`collect` decode a whole export before
        mutating anything.
        """
        if encoding == "dense":
            return SketchFamily.from_bytes(payload, self.spec)
        # Deferred so importing this module never pulls the network
        # stack in (repro.streams.net imports this module back).
        from repro.streams.net import codec

        cells = codec.decode_cells(payload, encoding, self.spec.counter_cells)
        if cells is None:  # dense-based encoding (e.g. dense+zlib)
            dense = codec.decode_dense(
                payload, encoding, self.spec.counter_cells
            )
            return SketchFamily.from_bytes(dense, self.spec)
        return cells

    def _apply_decoded(
        self, stream: str, incoming, at: float | None = None
    ) -> None:
        """Fold one :meth:`_decode_payload` result into ``stream``.

        ``at`` is the export's window watermark; a windowed fold engine
        lands the delta in the ring bucket covering it (all-time
        synopses are updated either way).  Unwindowed fold targets — the
        plain family map included — ignore it.
        """
        if not isinstance(incoming, SketchFamily):
            indices, values = incoming
            if self._engine is None and stream in self._families:
                self._families[stream].add_cells(indices, values)
                return
            incoming = SketchFamily.from_cells(indices, values, self.spec)
        if self._engine is not None:
            if at is not None and getattr(self._engine, "is_windowed", False):
                self._engine.merge_delta(stream, incoming, at=at)
            else:
                self._engine.merge_delta(stream, incoming)
        elif stream in self._families:
            self._families[stream].merge_in_place(incoming)
        else:
            self._families[stream] = incoming

    def collect_from(self, site: StreamSite) -> None:
        """Convenience: export from a site object, collect, acknowledge."""
        self.collect(site.export())
        site.acknowledge(
            self.applied_sequence(site.site_id, site.incarnation)
        )

    def applied_sequence(
        self, site_id: str, incarnation: str | None = None
    ) -> int:
        """The last applied export sequence for ``site_id`` (0 if none).

        Sequences are per incarnation (one lifetime of the site
        process); ``incarnation=None`` reads the one that most recently
        applied an export.
        """
        history = self._applied.get(site_id, {})
        if incarnation is None:
            incarnation = self._current.get(site_id, "")
        return history.get(incarnation, 0)

    def site_sequences(self) -> dict[str, dict[str, int]]:
        """``site id -> incarnation -> last applied sequence``.

        The full per-incarnation history — this is what rides in
        checkpoint metadata, so a restored coordinator can answer any
        returning incarnation with the right resume point.
        """
        return {site: dict(history) for site, history in self._applied.items()}

    @property
    def sites_collected(self) -> int:
        """How many delta exports have been applied (duplicates excluded)."""
        return self._collects_applied

    @property
    def duplicates_dropped(self) -> int:
        """How many duplicate exports were dropped idempotently."""
        return self._duplicates_dropped

    # -- restore (fail-over) ----------------------------------------------

    def adopt_family(self, stream: str, family: SketchFamily) -> None:
        """Install a pre-merged synopsis for ``stream`` (restore path)."""
        if family.spec != self.spec:
            from repro.errors import IncompatibleSketchesError

            raise IncompatibleSketchesError(
                "adopted family does not follow the coordinator's SketchSpec"
            )
        if self._engine is not None:
            self._engine.adopt_family(stream, family)
        else:
            self._families[stream] = family

    def set_applied_sequence(
        self, site_id: str, incarnation: str, sequence: int
    ) -> None:
        """Restore one incarnation's last applied sequence (fail-over)."""
        if sequence < 0:
            raise ValueError("sequence must be non-negative")
        self._applied.setdefault(site_id, {})[incarnation] = sequence
        current = self.applied_sequence(site_id)
        if sequence >= current:
            self._current[site_id] = incarnation

    # -- queries -----------------------------------------------------------

    @property
    def fold_engine(self):
        """The pluggable fold target (``None`` for the plain family map)."""
        return self._engine

    @property
    def is_windowed(self) -> bool:
        """Whether the fold target buckets incoming deltas by time.

        True only for a windowed :class:`StreamEngine` fold target.
        Exposing it here lets an uplink :class:`StreamSite` backed by
        this coordinator stamp its re-exports with the aggregated
        watermark automatically — a mid-tree node forwards windowed
        state upward exactly like a leaf.
        """
        return getattr(self._engine, "is_windowed", False)

    @property
    def window_clock(self) -> float:
        """The fold engine's window watermark (``-inf`` when unwindowed)."""
        return getattr(self._engine, "window_clock", float("-inf"))

    def families(self) -> dict[str, SketchFamily]:
        """``stream -> merged synopsis`` (live objects, not copies).

        The delta-export surface: an uplink
        :class:`StreamSite` backed by this coordinator diffs these
        families to re-export the *aggregated* state up a federation
        tree.
        """
        if self._engine is not None:
            return self._engine.families()
        return dict(self._families)

    def stream_names(self) -> list[str]:
        """Streams with a merged synopsis at the coordinator."""
        if self._engine is not None:
            return self._engine.stream_names()
        return sorted(self._families)

    def _require_streams(self, names: Iterable[str]) -> None:
        missing = sorted(set(names) - set(self.stream_names()))
        if missing:
            known = ", ".join(self.stream_names()) or "<none>"
            raise UnknownStreamError(
                f"no synopsis collected for stream(s) "
                f"{', '.join(repr(name) for name in missing)}; "
                f"known streams: {known}"
            )

    def _check_windowed_query(self, window: float | None) -> None:
        if window is not None and not getattr(
            self._engine, "is_windowed", False
        ):
            raise ValueError(
                "windowed queries need a windowed fold engine; construct "
                "the coordinator with engine=StreamEngine(spec, "
                "window_span=...)"
            )

    def query(
        self,
        expression: SetExpression | str,
        epsilon: float = 0.1,
        window: float | None = None,
    ) -> WitnessEstimate:
        """Estimate ``|E|`` over the merged global synopses.

        Raises :class:`~repro.errors.UnknownStreamError` (naming the
        missing stream and listing the known ones) when the expression
        references a stream no site has shipped yet.

        ``window`` restricts the estimate to the most recent ``window``
        time units of federated traffic — it requires a *windowed* fold
        engine, which buckets incoming deltas by their exports'
        ``window_at`` stamps (:class:`DeltaExport`).
        """
        self._check_windowed_query(window)
        if isinstance(expression, str):
            expression = parse(expression)
        self._require_streams(expression.streams())
        if self._engine is not None:
            if window is not None:
                return self._engine.query(expression, epsilon, window=window)
            return self._engine.query(expression, epsilon)
        return estimate_expression(expression, self._families, epsilon)

    def query_union(
        self,
        stream_names: Iterable[str],
        epsilon: float = 0.1,
        window: float | None = None,
    ) -> UnionEstimate:
        """Estimate the distinct-element count of a union of streams.

        Raises :class:`~repro.errors.UnknownStreamError` for stream
        names without a collected synopsis.  ``window`` as in
        :meth:`query`.
        """
        self._check_windowed_query(window)
        names = list(stream_names)
        self._require_streams(names)
        if self._engine is not None:
            if window is not None:
                return self._engine.query_union(names, epsilon, window=window)
            return self._engine.query_union(names, epsilon)
        families = [self._families[name] for name in names]
        return estimate_union(families, epsilon)

    def query_many(
        self,
        expressions: Sequence[SetExpression | str],
        epsilon: float = 0.1,
        window: float | None = None,
    ) -> list[WitnessEstimate]:
        """Estimate many expressions in one pass over the merged synopses.

        With a :class:`StreamEngine` fold target this delegates to its
        batched :meth:`StreamEngine.query_many` (expressions over the
        same stream set share one union estimate and one mask pass);
        other targets fall back to per-expression :meth:`query`.  Either
        way each answer is bit-identical to querying alone, and unknown
        streams raise :class:`~repro.errors.UnknownStreamError` before
        anything is evaluated.
        """
        self._check_windowed_query(window)
        parsed = [
            parse(expression) if isinstance(expression, str) else expression
            for expression in expressions
        ]
        names: set[str] = set()
        for expression in parsed:
            names.update(expression.streams())
        self._require_streams(names)
        engine_many = getattr(self._engine, "query_many", None)
        if engine_many is not None:
            if window is not None:
                return engine_many(parsed, epsilon, window=window)
            return engine_many(parsed, epsilon)
        if self._engine is not None:
            return [
                self.query(expression, epsilon, window=window)
                for expression in parsed
            ]
        return [
            estimate_expression(expression, self._families, epsilon)
            for expression in parsed
        ]

    @property
    def snapshot_position(self) -> tuple[int, int]:
        """A monotone snapshot token for the merged view.

        With a :class:`StreamEngine` fold target this is the engine's
        own ``(updates_processed, mutation_epoch)`` pair; otherwise a
        coordinator-level surrogate that advances with every applied
        collect, so two queries answered at the same position saw the
        same merged synopses.
        """
        position = getattr(self._engine, "snapshot_position", None)
        if position is not None:
            return tuple(position)
        if self._engine is not None:
            processed = getattr(self._engine, "updates_processed", 0)
            merged = getattr(self._engine, "deltas_merged", 0)
            return (processed + merged, 0)
        return (self._collects_applied, 0)

    def to_engine(self, batch_size: int = 4096) -> StreamEngine:
        """Hand the merged global synopses to a live engine.

        The engine adopts each merged family (shared storage) and can then
        keep ingesting updates — e.g. a coordinator that also tails a
        local stream after the periodic collection round.  With a
        pluggable fold engine the merged view is handed off instead: a
        :class:`StreamEngine` fold target is returned as-is, a sharded
        one through its ``merged_engine()`` (independent counter copies).
        """
        if self._engine is not None:
            if isinstance(self._engine, StreamEngine):
                return self._engine
            return self._engine.merged_engine(batch_size=batch_size)
        engine = StreamEngine(self.spec, batch_size=batch_size)
        for name, family in self._families.items():
            engine.adopt_family(name, family)
        return engine
