"""Shared helpers for the benchmark suite.

Every ``bench_fig*`` module regenerates one figure of the paper at the
``bench`` scale (see :func:`repro.experiments.config.scaled_config`) and
prints the same rows the published plot shows: trimmed-average relative
error per (number of sketches, target size) cell.  The ablation benches
share the dataset/family builders here.
"""

from __future__ import annotations

import numpy as np

from repro.core.family import SketchFamily, SketchSpec
from repro.core.sketch import SketchShape
from repro.datagen.controlled import GeneratedStreams, generate_controlled
from repro.experiments.reference import anchors_for
from repro.experiments.runner import SweepResult


def print_figure(result: SweepResult) -> None:
    """Print a sweep result plus the paper's published claims next to it."""
    print()
    print(result.as_table())
    for anchor in anchors_for(result.config.name):
        print(f"paper: {anchor.claim}")
    print(f"(elapsed {result.elapsed_seconds:.1f}s)")


def build_families(
    dataset: GeneratedStreams,
    num_sketches: int,
    num_second_level: int = 16,
    independence: int = 8,
    seed: int = 0,
    domain_bits: int = 24,
) -> dict[str, SketchFamily]:
    """One populated sketch family per stream of a generated dataset."""
    shape = SketchShape(
        domain_bits=domain_bits,
        num_second_level=num_second_level,
        independence=independence,
    )
    spec = SketchSpec(num_sketches=num_sketches, shape=shape, seed=seed)
    families = {}
    for name in dataset.stream_names():
        family = spec.build()
        family.update_batch(dataset.elements[name])
        families[name] = family
    return families


def intersection_dataset(
    seed: int, union_size: int = 4096, ratio: float = 0.25
) -> GeneratedStreams:
    rng = np.random.default_rng(seed)
    return generate_controlled("A & B", union_size, ratio, rng, domain_bits=24)
