"""End-to-end integration tests across the whole stack.

These drive updates (including deletions) through the public API — stream
engine, distributed sites, baselines — and compare every estimate against
the exact reference store.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Coordinator,
    ExactStreamStore,
    SketchShape,
    SketchSpec,
    StreamEngine,
    StreamSite,
    Update,
)
from repro.datagen.controlled import generate_controlled
from repro.datagen.updates_gen import with_phantom_deletions

SHAPE = SketchShape(domain_bits=22, num_second_level=12, independence=8)
SPEC = SketchSpec(num_sketches=384, shape=SHAPE, seed=2003)


class TestEngineAgainstGroundTruth:
    def _run_session(self, seed: int):
        """A full monitoring session: three streams, churn, queries."""
        rng = np.random.default_rng(seed)
        dataset = generate_controlled(
            "(A - B) & C", 3000, 0.25, rng, domain_bits=22
        )
        engine = StreamEngine(SPEC)
        exact = ExactStreamStore()
        for name in dataset.stream_names():
            updates = with_phantom_deletions(
                name, dataset.elements[name], rng,
                phantom_fraction=0.3, domain_bits=22,
            )
            for update in updates:
                engine.process(update)
                exact.apply(update)
        return engine, exact

    def test_full_session_queries(self):
        engine, exact = self._run_session(seed=200)
        for expression in ("A & B", "A - B", "(A - B) & C", "A | B | C"):
            truth = exact.cardinality(expression)
            estimate = engine.query(expression, 0.15)
            assert truth > 0
            assert abs(estimate.value - truth) / truth < 0.6, (
                expression,
                estimate.value,
                truth,
            )

    def test_churned_engine_state_equals_clean_state(self):
        """After phantom insert/delete traffic, the engine's synopses must
        equal those of an engine that saw only the surviving elements."""
        rng = np.random.default_rng(201)
        dataset = generate_controlled("A & B", 1000, 0.5, rng, domain_bits=22)
        churned = StreamEngine(SPEC)
        clean = StreamEngine(SPEC)
        for name in dataset.stream_names():
            updates = with_phantom_deletions(
                name, dataset.elements[name], rng,
                phantom_fraction=1.0, domain_bits=22,
            )
            churned.process_many(updates)
            for element in dataset.elements[name]:
                clean.process(Update(name, int(element), 1))
        for name in dataset.stream_names():
            assert churned.family(name) == clean.family(name)


class TestDistributedAgainstCentralised:
    def test_sharded_observation_equals_central_engine(self):
        rng = np.random.default_rng(202)
        dataset = generate_controlled("A & B", 2000, 0.4, rng, domain_bits=22)

        central = StreamEngine(SPEC)
        sites = [StreamSite(f"site-{index}", SPEC) for index in range(3)]
        coordinator = Coordinator(SPEC)

        for name in dataset.stream_names():
            for position, element in enumerate(dataset.elements[name]):
                update = Update(name, int(element), 1)
                central.process(update)
                sites[position % 3].observe(update)
        for site in sites:
            coordinator.collect_from(site)

        for name in dataset.stream_names():
            assert coordinator._families[name] == central.family(name)

        central_estimate = central.query("A & B", 0.15)
        distributed_estimate = coordinator.query("A & B", 0.15)
        assert distributed_estimate.value == pytest.approx(central_estimate.value)


class TestSerialisationPipeline:
    def test_ship_and_requery(self):
        """Synopses survive a serialise/ship/deserialise cycle bit-exactly."""
        rng = np.random.default_rng(203)
        dataset = generate_controlled("A - B", 1500, 0.3, rng, domain_bits=22)
        site = StreamSite("edge", SPEC)
        for name in dataset.stream_names():
            for element in dataset.elements[name]:
                site.observe(Update(name, int(element), 1))
        payloads = site.export()

        coordinator = Coordinator(SPEC)
        coordinator.collect(payloads)
        truth = dataset.exact_cardinality("A - B")
        estimate = coordinator.query("A - B", 0.15)
        assert abs(estimate.value - truth) / truth < 0.6


class TestBaselineComparison:
    def test_two_level_sketch_survives_where_minhash_dies(self):
        """The headline robustness comparison as an executable scenario."""
        from repro.baselines.minhash import BottomKSketch
        from repro.errors import IllegalDeletionError

        rng = np.random.default_rng(204)
        elements = rng.choice(2**22, size=2000, replace=False)
        family = SPEC.build()
        bottom_k = BottomKSketch(k=64, seed=5, domain_bits=22)
        for element in elements:
            family.update(int(element), 1)
            bottom_k.insert(int(element))

        # Delete the first half of the stream from both synopses.
        depleted = False
        for element in elements[:1000]:
            family.update(int(element), -1)
            try:
                bottom_k.delete(int(element))
            except IllegalDeletionError:
                depleted = True
        assert depleted  # MinHash lost sketch state it cannot rebuild...

        # ...while the 2-level sketch still answers correctly.
        from repro.core.union import estimate_union

        survivors = estimate_union([family], 0.15)
        assert abs(survivors.value - 1000) / 1000 < 0.4
