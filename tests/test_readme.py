"""Executable-documentation guard: README code blocks must run.

Extracts the fenced ``python`` blocks from README.md and executes them in
one shared namespace (later blocks may use names from earlier ones).  A
README that drifts from the API fails here, not in a user's terminal.
"""

from __future__ import annotations

import pathlib
import re

README = pathlib.Path(__file__).parent.parent / "README.md"

_BLOCK_PATTERN = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks() -> list[str]:
    return _BLOCK_PATTERN.findall(README.read_text())


class TestReadme:
    def test_has_python_blocks(self):
        assert len(python_blocks()) >= 2

    def test_blocks_execute(self, capsys):
        namespace: dict = {}
        for block in python_blocks():
            exec(compile(block, "<README>", "exec"), namespace)  # noqa: S102
        # The quickstart prints an estimate; make sure something came out.
        assert capsys.readouterr().out.strip()

    def test_mentioned_paths_exist(self):
        text = README.read_text()
        root = README.parent
        for relative in (
            "DESIGN.md",
            "EXPERIMENTS.md",
            "docs/THEORY.md",
            "docs/API.md",
            "examples/quickstart.py",
            "examples/dos_detection.py",
            "examples/sliding_window.py",
            "examples/checkpoint_recovery.py",
        ):
            assert (root / relative).is_file(), relative
