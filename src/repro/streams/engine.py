"""The update-stream processing engine (Figure 1 of the paper).

:class:`StreamEngine` is the query-processing architecture the paper
sketches: it maintains one synopsis (a :class:`SketchFamily`) per update
stream, in one pass over the update tuples, in arbitrary arrival order —
and answers set-expression cardinality queries from the synopses alone.

Updates are micro-batched per stream: ``process`` appends to an in-memory
buffer and the vectorised sketch-maintenance path runs when the buffer
fills (or on ``flush``/query).  The buffered updates are a constant-size
staging area, not a violation of the streaming model — updates are still
seen once, in order, and never re-read.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from repro.core.checks import combined_singleton_union_mask, empty_mask
from repro.core.expression import estimate_expression
from repro.core.family import SketchFamily, SketchSpec, check_same_coins
from repro.core.results import UnionEstimate, WitnessEstimate
from repro.core.union import estimate_union
from repro.core.witness import choose_witness_level
from repro.errors import EstimationError
from repro.expr.ast import SetExpression
from repro.expr.compile import compile_expression
from repro.expr.parser import parse
from repro.streams.stats import QueryStats, WindowStats
from repro.streams.updates import Update
from repro.streams.windows import WindowRing, check_window_config

__all__ = ["StreamEngine"]


@lru_cache(maxsize=4096)
def _expression_key_parts(expression: SetExpression):
    """Memoised ``(canonical cells, streams)`` of an (immutable) expression.

    Standing queries look up the same expression tree every tick; both
    parts are pure functions of the tree, so they are computed once per
    distinct expression, process-wide.
    """
    from repro.expr.optimize import canonical_cells

    return canonical_cells(expression), expression.streams()


@dataclass
class _CacheEntry:
    """One cached estimate plus the synopsis state it was derived from.

    ``families``/``versions`` record each participating synopsis and its
    version counter at compute time; ``prefix`` is the deepest union-scan
    level the estimate consulted and ``[start, stop)`` the witness window
    (empty for pure union entries).  The entry stays servable while every
    family reports those levels clean since its recorded version — see
    :meth:`repro.core.family.SketchFamily.levels_clean_since`.

    ``position`` is the engine's ``(updates_processed, mutation_epoch)``
    pair at compute time: the epoch counts synopsis mutations that are
    *not* processed updates (delta folds, window-ring expiry), so the
    "nothing changed" fast path cannot serve a stale result across them.
    """

    result: object
    position: tuple[int, int]
    families: tuple[SketchFamily, ...]
    versions: tuple[int, ...]
    prefix: int
    start: int = 0
    stop: int = 0

    def is_clean(self) -> bool:
        return all(
            family.levels_clean_since(version, self.prefix, self.start, self.stop)
            for family, version in zip(self.families, self.versions)
        )


class StreamEngine:
    """Maintains per-stream 2-level hash sketch synopses and answers queries.

    Parameters
    ----------
    spec:
        The sketch recipe every stream synopsis follows.  One spec for the
        whole engine — synopses must share "coins" to be combinable.
    batch_size:
        Number of buffered updates per stream that triggers the vectorised
        maintenance path.
    use_plan:
        Route maintenance through the spec's shared
        :class:`~repro.core.plan.HashPlan` (stacked hashing plus the
        element-row cache; bit-identical counters).  Because the plan is
        keyed to the spec's coins, *all* streams of the engine share one
        plan: an element hashed for one stream is a cache hit for every
        other.  ``False`` restores the classic per-sketch path.
    dense_domain:
        Precompute a dense scatter table for the domain prefix
        ``[0, dense_domain)`` on the shared plan (see
        :meth:`~repro.core.plan.HashPlan.ensure_dense_domain`): elements
        below the limit are then served by pure table gathers — no
        hashing, no cache traffic — and only the tail touches the LRU.
        Costs ``dense_domain · r · s · 2`` bytes up front (2 KiB per key
        at the library default shape — rows are stored as
        per-sketch-local uint16 ids); counters stay bit-identical.
        Requires ``use_plan=True``.
    hot_keys:
        Learn a hot-key dictionary from the stream instead of assuming a
        bounded prefix: the first ``hot_key_sample`` updates are sampled,
        the ``hot_keys`` most frequent elements become a dense dictionary
        table (:meth:`~repro.core.plan.HashPlan.ensure_dense_keys`), and
        ingest proceeds as with ``dense_domain``.  Mutually exclusive
        with ``dense_domain``; requires ``use_plan=True``.
    hot_key_sample:
        How many updates to observe before freezing the hot-key set.
    window_span:
        Enable sliding-window queries: each stream additionally maintains
        a :class:`~repro.streams.windows.WindowRing` of time-bucketed
        synopses covering the most recent ``window_span`` time units, and
        ``query(..., window=W)`` answers over that state.  Timestamped
        ingest goes through :meth:`observe`/:meth:`observe_many` (which
        also feed the all-time synopses); the ring clock is shared across
        streams and advanced by :meth:`advance_to`.
    bucket_width:
        Bucket granularity of the window rings; must divide
        ``window_span`` evenly.  Defaults to the full span (one tumbling
        bucket).  Windowed queries may ask for any whole number of
        buckets up to the span.
    clock_policy:
        Timestamp policy for windowed ingest, as in
        :class:`~repro.streams.windows.SlidingWindowDriver`: ``"raise"``
        (default) rejects regressing timestamps, ``"clamp"`` stamps them
        at the watermark; NaN always raises.
    """

    def __init__(
        self,
        spec: SketchSpec,
        batch_size: int = 4096,
        use_plan: bool = True,
        dense_domain: int | None = None,
        hot_keys: int = 0,
        hot_key_sample: int = 65536,
        window_span: float | None = None,
        bucket_width: float | None = None,
        clock_policy: str = "raise",
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if dense_domain is not None and dense_domain < 1:
            raise ValueError("dense_domain must be positive")
        if hot_keys < 0:
            raise ValueError("hot_keys must be non-negative")
        if hot_key_sample < 1:
            raise ValueError("hot_key_sample must be positive")
        if dense_domain is not None and hot_keys:
            raise ValueError("pass dense_domain or hot_keys, not both")
        if (dense_domain is not None or hot_keys) and not use_plan:
            raise ValueError("the dense fast path requires use_plan=True")
        if window_span is None:
            if bucket_width is not None:
                raise ValueError("bucket_width requires window_span")
            self._window_span = self._bucket_width = None
        else:
            self._window_span, self._bucket_width, _ = check_window_config(
                window_span, bucket_width
            )
        if clock_policy not in ("raise", "clamp"):
            raise ValueError("clock_policy must be 'raise' or 'clamp'")
        self._clock_policy = clock_policy
        self._rings: dict[str, WindowRing] = {}
        self._window_clock = float("-inf")
        self.spec = spec
        self._batch_size = batch_size
        self._plan_arg = "auto" if use_plan else None
        self._hot_keys = hot_keys
        self._hot_key_sample = hot_key_sample
        self._hot_samples: list[np.ndarray] | None = [] if hot_keys else None
        self._hot_sampled = 0
        if dense_domain is not None:
            from repro.core.plan import plan_for

            plan_for(spec).ensure_dense_domain(dense_domain)
        self._families: dict[str, SketchFamily] = {}
        self._buffers: dict[str, tuple[list[int], list[int]]] = {}
        self._updates_processed = 0
        # Synopsis mutations that are not processed updates: delta folds
        # (merge_delta) and non-empty window-bucket expiry.  Folded into
        # the cache position so the position-equality fast path stays
        # sound — without it a cached estimate could be served unchanged
        # after a merge or rotation mutated a participating family.
        self._mutation_epoch = 0
        # (canonical cells, streams, epsilon, pool) -> _CacheEntry; entries
        # carry per-family version/level dependencies so repeat queries
        # revalidate in O(streams) instead of recomputing whenever *any*
        # update arrived anywhere (see _CacheEntry).
        self._query_cache: dict[tuple, _CacheEntry] = {}
        # (sorted stream names, epsilon) -> _CacheEntry for union estimates;
        # shared between query_union and the ε/3 sub-estimates of query().
        self._union_cache: dict[tuple, _CacheEntry] = {}
        self._query_stats = QueryStats()

    # -- ingest --------------------------------------------------------------

    def process(self, update: Update) -> None:
        """Ingest one update tuple ``<stream, element, ±delta>``."""
        elements, deltas = self._buffers.setdefault(update.stream, ([], []))
        elements.append(update.element)
        deltas.append(update.delta)
        self._updates_processed += 1
        if len(elements) >= self._batch_size:
            self._flush_stream(update.stream)

    def process_many(self, updates: Iterable[Update]) -> None:
        """Ingest a sequence of update tuples.

        Equivalent to ``process`` per tuple — same buffers, same flush
        cadence, bit-identical counters — with the per-update method
        dispatch and bookkeeping hoisted out of the loop (the Python-level
        overhead is a measurable slice of ingest at dense-path speeds).
        """
        buffers = self._buffers
        batch_size = self._batch_size
        count = 0
        for update in updates:
            stream = update.stream
            buffered = buffers.get(stream)
            if buffered is None:
                buffered = buffers[stream] = ([], [])
            elements, deltas = buffered
            elements.append(update.element)
            deltas.append(update.delta)
            count += 1
            if len(elements) >= batch_size:
                self._flush_stream(stream)
        self._updates_processed += count

    def flush(self) -> None:
        """Push all buffered updates into the synopses."""
        for stream in list(self._buffers):
            self._flush_stream(stream)
        for ring in self._rings.values():
            ring.flush()

    # -- windowed ingest -------------------------------------------------------

    @property
    def window_span(self) -> float | None:
        """The sliding-window span, or ``None`` for an unwindowed engine."""
        return self._window_span

    @property
    def bucket_width(self) -> float | None:
        """The window rings' bucket granularity (``None`` if unwindowed)."""
        return self._bucket_width

    @property
    def is_windowed(self) -> bool:
        return self._window_span is not None

    @property
    def window_clock(self) -> float:
        """The shared window watermark (``-inf`` before the first instant)."""
        return self._window_clock

    @property
    def clock_policy(self) -> str:
        return self._clock_policy

    def observe(self, update: Update, at: float) -> None:
        """Ingest one timestamped update (windowed engines only).

        Feeds both the all-time synopsis (exactly like :meth:`process`)
        and the stream's window ring.  ``at`` is validated against the
        engine-wide watermark per ``clock_policy``; the watermark is
        shared by all streams, mirroring
        :class:`~repro.streams.windows.SlidingWindowDriver`'s single
        clock.
        """
        self._require_windowed()
        at = self._checked_window_time(at)
        self.process(update)
        self._ring(update.stream).observe(update.element, update.delta, at)

    def observe_many(self, updates: Iterable[tuple[Update, float]]) -> int:
        """Ingest a sequence of ``(update, timestamp)`` pairs.

        Returns the number of updates observed.  Like
        :meth:`~repro.streams.windows.SlidingWindowDriver.observe_many`,
        ingestion is partial on a rejected timestamp: earlier pairs have
        already been applied, and the return value says how far the
        iterable got.
        """
        self._require_windowed()
        observed = 0
        for update, at in updates:
            self.observe(update, at)
            observed += 1
        return observed

    def advance_to(self, now: float) -> int:
        """Move the window watermark forward on every ring.

        Returns the total number of buckets expired.  Expiry is pure
        synopsis subtraction — no per-update state exists anywhere.
        """
        self._require_windowed()
        now = self._checked_window_time(now)
        expired = 0
        for ring in self._rings.values():
            expired += self._advance_ring(ring, now)
        return expired

    def window_family(self, stream: str, window: float | None = None) -> SketchFamily:
        """The in-window synopsis for ``stream`` (advanced to the watermark).

        ``window`` selects a sub-window (a whole number of bucket widths
        up to the span); ``None`` means the full span.
        """
        self._require_windowed()
        ring = self._ring(stream)
        if self._window_clock != float("-inf"):
            self._advance_ring(ring, self._window_clock)
        return ring.family(window)

    def window_stats(self) -> WindowStats:
        """Rotation/expiry counters summed over the per-stream rings."""
        stats = WindowStats()
        for ring in self._rings.values():
            stats.rotations += ring.rotations
            stats.buckets_expired += ring.buckets_expired
            stats.empty_expiries += ring.empty_expiries
            stats.subwindow_rebuilds += ring.subwindow_rebuilds
        return stats

    def _position(self) -> tuple[int, int]:
        """The cache-position pair: processed updates plus mutation epoch."""
        return (self._updates_processed, self._mutation_epoch)

    def _advance_ring(self, ring: WindowRing, now: float) -> int:
        """Advance one ring, folding non-empty expiries into the epoch.

        An expiry that subtracts a non-empty bucket mutates the ring's
        window total without any update being processed; bumping the
        mutation epoch keeps the cache's position fast path honest.
        Empty-bucket expiries deliberately do not bump it — nothing
        changed, so cached windowed estimates stay servable unrun.
        """
        before = ring.buckets_expired - ring.empty_expiries
        expired = ring.advance_to(now)
        self._mutation_epoch += (ring.buckets_expired - ring.empty_expiries) - before
        return expired

    def _require_windowed(self) -> None:
        if self._window_span is None:
            raise ValueError(
                "this engine is not windowed; construct it with window_span="
            )

    def _checked_window_time(self, at: float) -> float:
        at = float(at)
        if math.isnan(at):
            raise ValueError("timestamps must not be NaN")
        if at < self._window_clock:
            if self._clock_policy == "raise":
                raise ValueError(
                    f"time went backwards: {at} after {self._window_clock}"
                )
            return self._window_clock  # clamp: stamp at the watermark
        self._window_clock = at
        return at

    def _ring(self, stream: str) -> WindowRing:
        ring = self._rings.get(stream)
        if ring is None:
            ring = self._rings[stream] = WindowRing(
                self.spec,
                self._window_span,
                self._bucket_width,
                clock_policy=self._clock_policy,
            )
            if self._window_clock != float("-inf"):
                ring.advance_to(self._window_clock)
        return ring

    # -- queries ----------------------------------------------------------------

    def query(
        self,
        expression: SetExpression | str,
        epsilon: float = 0.1,
        pool_levels: int = 1,
        use_cache: bool = True,
        window: float | None = None,
    ) -> WitnessEstimate:
        """Estimate ``|E|`` for a set expression over the engine's streams.

        ``pool_levels`` enables the level-pooling extension (see
        :func:`repro.core.witness.run_witness_estimator`).

        ``window`` (windowed engines only) answers over the most recent
        ``window`` time units instead of all time: the participating
        streams' window-ring synopses — exact at bucket boundaries — are
        substituted for the all-time families, everything else (the
        estimators, the cache, the error guarantees) is unchanged.  It
        must be a whole number of bucket widths in ``(0, window_span]``.

        Repeat queries are served from a semantic cache: the key is the
        expression's canonical Venn-cell set, so equivalent spellings
        (``"A & B"`` vs ``"B & A"`` vs ``"A - (A - B)"``) share one entry.
        An entry records which sketch levels it consulted (the union-scan
        prefix and the witness window) and each participating family's
        version; it is served again — bit-identical, the estimators are
        deterministic functions of those levels — until an update actually
        dirties a consulted level of a participating stream.  Updates to
        other streams, or to deeper levels, do not evict.  Windowed
        entries revalidate the same way against the ring synopses'
        versions — a rotation that expires only empty buckets leaves
        them servable.  ``use_cache=False`` bypasses the cache entirely.
        """
        if isinstance(expression, str):
            expression = parse(expression)
        self.flush()
        window = self._checked_query_window(window)
        if window is not None:
            self._prepare_window(expression.streams())
        stats = self._query_stats
        stats.queries += 1
        if window is not None:
            stats.window_queries += 1

        key = None
        if use_cache:
            key = self._expression_key(expression, epsilon, pool_levels, window)
            cached = self._cache_lookup(self._query_cache, key)
            if cached is not None:
                return cached.result

        estimate, entry = self._evaluate_expression(
            expression, epsilon, pool_levels, use_cache, window
        )
        stats.recomputes += 1
        if use_cache:
            self._query_cache[key] = entry
        return estimate

    def query_many(
        self,
        expressions: Sequence[SetExpression | str],
        epsilon: float = 0.1,
        pool_levels: int = 1,
        use_cache: bool = True,
        window: float | None = None,
    ) -> list[WitnessEstimate]:
        """Estimate many expressions in one shared evaluation pass.

        Answers each expression exactly as :meth:`query` would —
        bit-identical results, same cache — but expressions over the same
        *stream set* share the expensive sub-steps: one union estimate,
        one combined-singleton ``valid`` mask, and one set of per-stream
        non-emptiness masks per group, with only the compiled Boolean
        program evaluated per expression.  N standing queries over one
        stream set cost one mask computation plus N vector ops instead of
        N full evaluations.  This is the continuous-query tick path (see
        :class:`repro.streams.continuous.ContinuousQueryProcessor`).
        """
        if not (0 < epsilon < 1):
            raise ValueError("epsilon must be in (0, 1)")
        if pool_levels < 1:
            raise ValueError("pool_levels must be at least 1")
        parsed = [
            parse(expression) if isinstance(expression, str) else expression
            for expression in expressions
        ]
        self.flush()
        window = self._checked_query_window(window)
        if window is not None:
            names: set[str] = set()
            for expression in parsed:
                names.update(expression.streams())
            self._prepare_window(names)
        stats = self._query_stats
        stats.queries += len(parsed)
        stats.batch_queries += len(parsed)
        if window is not None:
            stats.window_queries += len(parsed)

        results: list[WitnessEstimate | None] = [None] * len(parsed)
        groups: dict[frozenset[str], list[tuple[int, SetExpression, tuple | None]]] = {}
        pending: dict[tuple, int] = {}
        aliases: list[tuple[int, int]] = []
        for index, expression in enumerate(parsed):
            key = None
            if use_cache:
                key = self._expression_key(expression, epsilon, pool_levels, window)
                cached = self._cache_lookup(self._query_cache, key)
                if cached is not None:
                    results[index] = cached.result
                    continue
                if key in pending:
                    # An equivalent spelling earlier in this batch — share
                    # its evaluation, exactly as the cache would across
                    # calls (B(E) is the same Boolean function, so the
                    # result is bit-identical).
                    aliases.append((index, pending[key]))
                    continue
                pending[key] = index
            groups.setdefault(expression.streams(), []).append(
                (index, expression, key)
            )

        for stream_set, members in groups.items():
            stats.batch_groups += 1
            estimates, entry_for = self._evaluate_group(
                stream_set, [expr for _, expr, _ in members],
                epsilon, pool_levels, use_cache, window,
            )
            stats.recomputes += len(members)
            for (index, _, key), estimate in zip(members, estimates):
                results[index] = estimate
                if use_cache:
                    self._query_cache[key] = entry_for(estimate)
        for index, source in aliases:
            stats.recomputes += 1
            results[index] = results[source]
        return results

    def query_union(
        self,
        stream_names: Iterable[str],
        epsilon: float = 0.1,
        use_cache: bool = True,
        window: float | None = None,
    ) -> UnionEstimate:
        """Estimate the distinct-element count of a union of streams.

        Served through the same version-revalidated cache as :meth:`query`
        (an entry depends only on the union scan's level prefix); the
        entry is shared with the ``ε/3`` union sub-estimates that
        expression queries compute, in both directions.  ``window``
        answers over the sliding window, as in :meth:`query`.
        """
        self.flush()
        window = self._checked_query_window(window)
        stats = self._query_stats
        stats.union_queries += 1
        if window is not None:
            stats.window_queries += 1
        names = tuple(sorted(set(stream_names)))
        if not names:
            # Preserve the uncached error behaviour for an empty selection.
            return estimate_union([], epsilon)
        if window is not None:
            self._prepare_window(names)
        return self._union_for(names, epsilon, use_cache, window)

    def explain(self, expression: SetExpression | str, epsilon: float = 0.1):
        """Per-subexpression cardinality breakdown (one consistent scan).

        Returns an :class:`~repro.core.explain.ExpressionExplanation`.
        """
        from repro.core.explain import explain_expression

        if isinstance(expression, str):
            expression = parse(expression)
        self.flush()
        families = {name: self._family(name) for name in expression.streams()}
        return explain_expression(expression, families, epsilon)

    # -- introspection ---------------------------------------------------------

    @property
    def updates_processed(self) -> int:
        return self._updates_processed

    @property
    def snapshot_position(self) -> tuple[int, int]:
        """The ``(updates_processed, mutation_epoch)`` snapshot token.

        Two reads at the same position are guaranteed to observe the
        same synopsis state: every mutation — an ingested update, a
        folded delta, a non-empty window expiry — advances one of the
        components.  The serving layer stamps each answered query batch
        with this token so clients can reason about read consistency
        without the engine ever locking out ingest.
        """
        return self._position()

    def stream_names(self) -> list[str]:
        """Streams with a registered synopsis or buffered updates."""
        return sorted(set(self._families) | set(self._buffers))

    def family(self, stream: str) -> SketchFamily:
        """The maintained synopsis for ``stream`` (flushed first)."""
        self._flush_stream(stream)
        return self._family(stream)

    def families(self) -> dict[str, SketchFamily]:
        """Flushed ``stream -> synopsis`` mapping (live objects).

        The returned families share storage with the engine — they are
        the maintained synopses themselves, not copies.  This is the
        hand-off surface for checkpointing, delta export
        (:class:`~repro.streams.distributed.StreamSite`), and
        coordinator restore.
        """
        self.flush()
        return {name: self._family(name) for name in self.stream_names()}

    def synopsis_bytes(self) -> int:
        """Total size of all maintained counter arrays, in bytes."""
        return sum(family.counters.nbytes for family in self._families.values())

    def plan_stats(self):
        """Hash-plan cache counters for this engine's spec.

        Returns a :class:`~repro.core.plan.HashPlanStats` snapshot.  The
        plan is shared process-wide by spec, so the counters cover every
        family built from the same coins (all this engine's streams, and
        any sibling engine on the spec).  With ``use_plan=False`` the
        snapshot is empty.
        """
        from repro.core.plan import HashPlanStats, plan_for

        if self._plan_arg is None:
            return HashPlanStats()
        return plan_for(self.spec).stats()

    def query_stats(self) -> QueryStats:
        """Query-path counters: cache hits, revalidations, recomputes.

        Returns a :class:`~repro.streams.stats.QueryStats` snapshot
        (a copy; it does not keep counting).
        """
        return replace(self._query_stats)

    # -- checkpoint support -----------------------------------------------

    def adopt_family(self, stream: str, family: SketchFamily) -> None:
        """Install a pre-built synopsis for ``stream`` (checkpoint restore,
        or hand-off from a :class:`~repro.streams.distributed.Coordinator`).

        The family must follow the engine's spec; any buffered updates for
        the stream are discarded in favour of the adopted state.
        """
        if family.spec != self.spec:
            from repro.errors import IncompatibleSketchesError

            raise IncompatibleSketchesError(
                "adopted family does not follow the engine's SketchSpec"
            )
        self._families[stream] = family
        self._buffers.pop(stream, None)
        # The synopsis *object* was replaced (its version counter restarts),
        # so cached entries referencing the old family could revalidate
        # against stale state — drop everything.
        self._query_cache.clear()
        self._union_cache.clear()

    def merge_delta(
        self, stream: str, delta: SketchFamily, at: float | None = None
    ) -> None:
        """Fold a delta synopsis into ``stream`` by linearity.

        The network-fold primitive: a
        :class:`~repro.streams.distributed.Coordinator` backed by this
        engine lands each incoming
        :class:`~repro.streams.distributed.DeltaExport` payload here.
        When the stream has no synopsis yet the delta is adopted
        directly (ownership transfers to the engine); otherwise the
        counters are added in place, which marks the family dirty so
        cached queries revalidate.

        On a windowed engine, ``at`` attributes the delta to a window
        instant (the exporter's window clock at cut time): the delta
        additionally lands in the stream's ring bucket for ``at``.  A
        late delta whose bucket already expired folds into the all-time
        synopsis only — those updates are out of window.  Timestamp
        regressions are *not* errors here (site skew is expected at a
        fold point); the ring clock simply never goes backwards.
        """
        if delta.spec != self.spec:
            from repro.errors import IncompatibleSketchesError

            raise IncompatibleSketchesError(
                "delta family does not follow the engine's SketchSpec"
            )
        self._flush_stream(stream)
        family = self._families.get(stream)
        if family is None:
            self.adopt_family(stream, delta)
        else:
            family.merge_in_place(delta)
        # A fold mutates the synopsis without processing updates; move
        # the epoch so the cache's position fast path cannot serve a
        # pre-merge result (version revalidation then catches the dirty
        # levels and recomputes).
        self._mutation_epoch += 1
        if at is not None and self._window_span is not None:
            at = float(at)
            if math.isnan(at):
                raise ValueError("timestamps must not be NaN")
            if at > self._window_clock:
                self._window_clock = at
            self._ring(stream).merge_at(delta, at)

    def mark_replayed(self, num_updates: int) -> None:
        """Record updates that were applied before this engine existed
        (restored state); keeps ``updates_processed`` meaningful."""
        if num_updates < 0:
            raise ValueError("num_updates must be non-negative")
        self._updates_processed += num_updates
        if num_updates:
            self._query_cache.clear()
            self._union_cache.clear()

    def window_state(self) -> tuple[dict, list[tuple[str, bytes]]]:
        """Ring state for a checkpoint: ``(metadata, payloads)``.

        ``metadata`` is JSON-safe (window config, shared clock, and each
        stream's live bucket indices); ``payloads`` are the non-zero
        buckets' counter slabs keyed ``"<stream>@<bucket_index>"`` — they
        travel as files next to the stream payloads, the in-window
        totals are rebuilt by summation on restore.  Only meaningful on
        a windowed engine (see :func:`repro.streams.checkpoint.checkpoint_engine`).
        """
        self._require_windowed()
        self.flush()
        clock = self._window_clock
        meta: dict = {
            "window_span": self._window_span,
            "bucket_width": self._bucket_width,
            "clock_policy": self._clock_policy,
            "clock": None if clock == float("-inf") else clock,
            "streams": {},
        }
        payloads: list[tuple[str, bytes]] = []
        for stream in sorted(self._rings):
            ring = self._rings[stream]
            if clock != float("-inf"):
                self._advance_ring(ring, clock)
            buckets = []
            for index, payload in ring.bucket_payloads():
                buckets.append(index)
                payloads.append((f"{stream}@{index}", payload))
            meta["streams"][stream] = buckets
        return meta, payloads

    def restore_window_state(
        self, meta: dict, buckets_by_stream: dict[str, dict[int, SketchFamily]]
    ) -> None:
        """Rebuild the window rings from checkpointed state.

        The engine must have been constructed with the checkpoint's
        window config; ``buckets_by_stream`` carries the decoded bucket
        synopses (absent buckets restore as empty — they were all-zero
        at checkpoint time and carry no state).
        """
        self._require_windowed()
        clock = meta.get("clock")
        if clock is not None:
            self._window_clock = float(clock)
        for stream, indices in meta.get("streams", {}).items():
            decoded = buckets_by_stream.get(stream, {})
            buckets = {
                int(index): decoded[int(index)]
                for index in indices
                if int(index) in decoded
            }
            self._rings[stream] = WindowRing.restore(
                self.spec,
                self._window_span,
                self._bucket_width,
                clock,
                buckets,
                clock_policy=self._clock_policy,
            )

    # -- query internals -------------------------------------------------------

    def _expression_key(
        self,
        expression: SetExpression,
        epsilon: float,
        pool_levels: int,
        window: float | None = None,
    ) -> tuple:
        cells, stream_set = _expression_key_parts(expression)
        return (cells, stream_set, epsilon, pool_levels, window)

    def _checked_query_window(self, window: float | None) -> float | None:
        """Validate a query's ``window`` argument; returns it normalised."""
        if window is None:
            return None
        self._require_windowed()
        window = float(window)
        if not window > 0:
            raise ValueError("window must be positive")
        if window > self._window_span + 1e-9:
            raise ValueError(
                f"window {window} exceeds the engine's span {self._window_span}"
            )
        buckets = window / self._bucket_width
        if abs(buckets - round(buckets)) > 1e-9 or round(buckets) < 1:
            raise ValueError(
                f"window {window} is not a whole number of bucket widths "
                f"({self._bucket_width})"
            )
        return window

    def _prepare_window(self, names: Iterable[str]) -> None:
        """Advance the participating rings to the shared watermark.

        Rings rotate lazily: ingest only advances the observed stream's
        ring, so before a windowed evaluation every participating ring
        (materialised on demand — a never-observed stream has an empty
        window) catches up to the engine clock, expiring what fell out.
        """
        clock = self._window_clock
        for name in names:
            ring = self._ring(name)
            if clock != float("-inf"):
                self._advance_ring(ring, clock)

    def _family_for(self, stream: str, window: float | None) -> SketchFamily:
        if window is None:
            return self._family(stream)
        return self._rings[stream].family(window)

    def _cache_lookup(
        self, cache: dict[tuple, _CacheEntry], key: tuple, union: bool = False
    ) -> _CacheEntry | None:
        """A servable entry for ``key``, or None (a miss counts nothing).

        Fast path: nothing at all was processed since the entry was stored.
        Slow path: updates arrived, but every level the entry's estimate
        consulted is still clean in every participating family — the
        estimators are deterministic in those levels, so the stored result
        is bit-identical to what a recompute would produce.
        """
        entry = cache.get(key)
        if entry is None:
            return None
        stats = self._query_stats
        if entry.position == self._position():
            if union:
                stats.union_cache_hits += 1
            else:
                stats.cache_hits += 1
            return entry
        if entry.is_clean():
            entry.position = self._position()
            if union:
                stats.union_revalidations += 1
            else:
                stats.revalidations += 1
            return entry
        return None

    def _union_for(
        self,
        names: tuple[str, ...],
        epsilon: float,
        use_cache: bool = True,
        window: float | None = None,
    ) -> UnionEstimate:
        """Cached union estimate over ``names`` (a sorted tuple)."""
        key = (names, epsilon, window)
        if use_cache:
            cached = self._cache_lookup(self._union_cache, key, union=True)
            if cached is not None:
                return cached.result
        families = tuple(self._family_for(name, window) for name in names)
        result = estimate_union(families, epsilon)
        self._query_stats.union_recomputes += 1
        if use_cache:
            # The union scan consulted levels 0..result.level only (the
            # saturated fallback reports the last level, covering the full
            # scan), so that prefix is the entry's whole dependency.
            self._union_cache[key] = _CacheEntry(
                result=result,
                position=self._position(),
                families=families,
                versions=tuple(family.version for family in families),
                prefix=result.level,
            )
        return result

    def _evaluate_expression(
        self,
        expression: SetExpression,
        epsilon: float,
        pool_levels: int,
        use_cache: bool,
        window: float | None = None,
    ) -> tuple[WitnessEstimate, _CacheEntry]:
        names = tuple(sorted(expression.streams()))
        union = self._union_for(names, epsilon / 3.0, use_cache, window)
        families = {name: self._family_for(name, window) for name in names}
        estimate = estimate_expression(
            expression,
            families,
            epsilon,
            union_estimate=union,
            pool_levels=pool_levels,
        )
        return estimate, self._witness_entry(
            names, union, estimate, pool_levels, window
        )

    def _witness_entry(
        self,
        names: tuple[str, ...],
        union: UnionEstimate,
        estimate: WitnessEstimate,
        pool_levels: int,
        window: float | None = None,
    ) -> _CacheEntry:
        families = tuple(self._family_for(name, window) for name in names)
        if estimate.union_estimate <= 0.0:
            # Empty-union early return: no witness slab was consulted.
            start = stop = 0
        else:
            num_levels = families[0].shape.num_levels
            start = estimate.level
            stop = min(start + pool_levels, num_levels)
        return _CacheEntry(
            result=estimate,
            position=self._position(),
            families=families,
            versions=tuple(family.version for family in families),
            prefix=union.level,
            start=start,
            stop=stop,
        )

    def _evaluate_group(
        self,
        stream_set: frozenset[str],
        expressions: list[SetExpression],
        epsilon: float,
        pool_levels: int,
        use_cache: bool,
        window: float | None = None,
    ):
        """Evaluate expressions over one stream set with shared sub-steps.

        Replicates :func:`repro.core.witness.run_witness_estimator` /
        :func:`repro.core.expression.estimate_expression` exactly — same
        union sub-estimate, same level choice, same masks, same error —
        but hoists everything expression-independent out of the per-query
        loop.  Returns ``(estimates, entry_for)`` with ``entry_for`` a
        factory producing the cache entry for each estimate.
        """
        names = tuple(sorted(stream_set))
        families = [self._family_for(name, window) for name in names]
        check_same_coins(*families)
        union = self._union_for(names, epsilon / 3.0, use_cache, window)
        union_value = float(union)
        num_sketches = families[0].num_sketches

        if union_value <= 0.0:
            # All streams (estimated) empty; every expression over them is
            # too — mirror run_witness_estimator's early return.
            empty = WitnessEstimate(
                value=0.0,
                level=0,
                union_estimate=union_value,
                num_valid=0,
                num_witnesses=0,
                num_sketches=num_sketches,
            )
            estimates = [empty for _ in expressions]
        else:
            num_levels = families[0].shape.num_levels
            level = choose_witness_level(union_value, epsilon, num_levels)
            programs = [compile_expression(expr) for expr in expressions]
            num_valid = 0
            witness_counts = [0] * len(expressions)
            for pooled in range(level, min(level + pool_levels, num_levels)):
                slabs = [family.level_slab(pooled) for family in families]
                valid = combined_singleton_union_mask(slabs)
                num_valid += int(valid.sum())
                # Restrict the per-stream masks to the valid sketches once:
                # programs are elementwise, so evaluating on the compressed
                # masks and summing equals summing ``witness & valid`` —
                # one fewer vector op per query, on shorter arrays.
                non_empty = {
                    name: (~empty_mask(slab))[valid]
                    for name, slab in zip(names, slabs)
                }
                for position, program in enumerate(programs):
                    witness_counts[position] += int(
                        program.evaluate(non_empty).sum()
                    )
            if num_valid == 0:
                raise EstimationError(
                    f"no sketch yielded a valid atomic observation at level "
                    f"{level}; maintain more sketches (have {num_sketches})"
                )
            estimates = [
                WitnessEstimate(
                    value=(count / num_valid) * union_value,
                    level=level,
                    union_estimate=union_value,
                    num_valid=num_valid,
                    num_witnesses=count,
                    num_sketches=num_sketches,
                )
                for count in witness_counts
            ]

        # Every member of the group consulted the same levels of the same
        # families, so the dependency record is computed once and shared
        # (tuples are immutable; each entry still tracks its own position).
        family_tuple = tuple(families)
        versions = tuple(family.version for family in families)
        if union_value <= 0.0:
            start = stop = 0
        else:
            start = level
            stop = min(level + pool_levels, num_levels)
        position_now = self._position()

        def entry_for(estimate: WitnessEstimate) -> _CacheEntry:
            return _CacheEntry(
                result=estimate,
                position=position_now,
                families=family_tuple,
                versions=versions,
                prefix=union.level,
                start=start,
                stop=stop,
            )

        return estimates, entry_for

    # -- internals ------------------------------------------------------------

    def _family(self, stream: str) -> SketchFamily:
        if stream not in self._families:
            self._families[stream] = self.spec.build()
        return self._families[stream]

    def _flush_stream(self, stream: str) -> None:
        buffered = self._buffers.get(stream)
        if not buffered or not buffered[0]:
            return
        elements, deltas = buffered
        if self._hot_samples is not None:
            self._observe_hot(elements)
        # ingest_batch aggregates the buffer by linearity (duplicates
        # collapse, churn cancels) before maintenance and routes through
        # the shared hash plan — bit-identical to update_batch, faster on
        # real (skewed, churning) traffic.
        self._family(stream).ingest_batch(elements, deltas, plan=self._plan_arg)
        self._buffers[stream] = ([], [])

    def _observe_hot(self, elements: list[int]) -> None:
        """Sample flushed elements until the hot-key dictionary freezes.

        Maintenance itself never waits on learning: batches flow through
        the LRU path until the sample threshold is reached, then the top
        ``hot_keys`` elements become a dense table on the shared plan and
        sampling stops.  The table only changes *which* mechanism serves
        an element's index row, so counters are bit-identical before,
        during, and after the switch.
        """
        self._hot_samples.append(np.asarray(elements, dtype=np.uint64))
        self._hot_sampled += len(elements)
        if self._hot_sampled < self._hot_key_sample:
            return
        sample = np.concatenate(self._hot_samples)
        self._hot_samples = None  # freeze: one learned table per engine
        unique, counts = np.unique(sample, return_counts=True)
        if unique.size > self._hot_keys:
            top = np.argpartition(counts, -self._hot_keys)[-self._hot_keys :]
            unique = unique[top]
        from repro.core.plan import plan_for

        plan_for(self.spec).ensure_dense_keys(unique)
