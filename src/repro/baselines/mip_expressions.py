"""MIP-based set-expression estimation over insert-only streams.

The paper identifies min-wise independent permutations as the only prior
technique handling operators beyond union, citing Chen et al. [7] for the
extension to Boolean/set expressions.  The idea: maintain one bottom-k
sketch per stream under a *shared* hash permutation.  The k smallest hash
values of the union of all streams are (approximately) a uniform sample
of the union's distinct elements; because every sketch kept the bottom-k
of its own stream, membership of each sampled element in each stream is
known exactly.  The fraction of the union-sample satisfying the
expression's membership condition estimates ``|E| / |∪ᵢAᵢ|``.

This is the natural head-to-head comparator for the 2-level hash sketch:
on insert-only streams it is simple and accurate, but a single deletion
of a sketched element invalidates it (see
:class:`repro.baselines.minhash.BottomKSketch`), whereas the 2-level
sketch keeps working.  ``benchmarks/bench_vs_mips.py`` quantifies both
directions.
"""

from __future__ import annotations

import heapq
from typing import Mapping

from repro.baselines.minhash import BottomKSketch
from repro.errors import UnknownStreamError
from repro.expr.ast import SetExpression
from repro.expr.parser import parse

__all__ = ["estimate_expression_mip", "estimate_union_mip"]


def _union_sample(sketches: Mapping[str, BottomKSketch]) -> tuple[list[int], int]:
    """The bottom-k hash values of the union, and the shared k."""
    first = next(iter(sketches.values()))
    for sketch in sketches.values():
        first._check_coins(sketch)
    k = first.k
    all_values = set()
    for sketch in sketches.values():
        all_values.update(sketch.values)
    return heapq.nsmallest(k, all_values), k


def estimate_union_mip(sketches: Mapping[str, BottomKSketch]) -> float:
    """Distinct count of the union from the combined bottom-k values."""
    union_bottom, k = _union_sample(sketches)
    if len(union_bottom) < k:
        return float(len(union_bottom))
    hash_range = float(2**61 - 1)
    return (k - 1) * hash_range / float(union_bottom[k - 1])


def estimate_expression_mip(
    expression: SetExpression | str,
    sketches: Mapping[str, BottomKSketch],
) -> float:
    """Estimate ``|E|`` from per-stream bottom-k sketches (insert-only).

    All sketches must be built with the same coins (seed/k/domain).  The
    union's bottom-k values form the sample; each sampled value's
    membership pattern across streams feeds the expression's
    :meth:`~repro.expr.ast.SetExpression.contains`.
    """
    if isinstance(expression, str):
        expression = parse(expression)
    names = sorted(expression.streams())
    missing = [name for name in names if name not in sketches]
    if missing:
        raise UnknownStreamError(
            f"no bottom-k sketch for stream(s): {', '.join(missing)}"
        )
    participating = {name: sketches[name] for name in names}

    union_bottom, _ = _union_sample(participating)
    if not union_bottom:
        return 0.0

    membership_sets = {
        name: set(sketch.values) for name, sketch in participating.items()
    }
    matches = 0
    for value in union_bottom:
        membership = {name: value in membership_sets[name] for name in names}
        if expression.contains(membership):
            matches += 1
    fraction = matches / len(union_bottom)
    return fraction * estimate_union_mip(participating)
