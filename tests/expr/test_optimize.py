"""Unit tests for expression analysis and simplification."""

from __future__ import annotations

import pytest

from repro.expr.optimize import (
    canonical_cells,
    equivalent,
    is_tautology,
    is_unsatisfiable,
    simplify,
)
from repro.expr.parser import parse
from repro.expr.venn import Cell


class TestCanonicalCells:
    def test_intersection(self):
        assert canonical_cells(parse("A & B")) == frozenset({Cell({"A", "B"})})

    def test_wider_universe_projection(self):
        cells = canonical_cells(parse("A"), frozenset({"A", "B"}))
        assert cells == frozenset({Cell({"A"}), Cell({"A", "B"})})

    def test_unsatisfiable_is_empty(self):
        assert canonical_cells(parse("A - A")) == frozenset()


class TestEquivalence:
    @pytest.mark.parametrize(
        ("first", "second"),
        [
            ("A & B", "B & A"),
            ("A | B", "B | A"),
            ("A - B", "A - (A & B)"),
            ("(A | B) - B", "A - B"),
            ("A & (B | C)", "(A & B) | (A & C)"),
            ("A - (B | C)", "(A - B) - C"),
            ("A", "A | (A & B)"),
            ("A & A", "A"),
        ],
    )
    def test_known_identities(self, first: str, second: str):
        assert equivalent(parse(first), parse(second))

    @pytest.mark.parametrize(
        ("first", "second"),
        [
            ("A - B", "B - A"),
            ("A & B", "A | B"),
            ("A", "B"),
            ("A - (B - C)", "(A - B) - C"),
        ],
    )
    def test_known_inequivalences(self, first: str, second: str):
        assert not equivalent(parse(first), parse(second))

    def test_different_stream_sets(self):
        # A is not equivalent to A | C: consider an element only in C...
        # wait, it must be in neither A; element in C-only is in A|C but
        # not in A.
        assert not equivalent(parse("A"), parse("A | C"))
        # ...but A is equivalent to A & (A | C).
        assert equivalent(parse("A"), parse("A & (A | C)"))


class TestSatisfiability:
    def test_unsatisfiable(self):
        assert is_unsatisfiable(parse("A - A"))
        assert is_unsatisfiable(parse("(A & B) - B"))
        assert not is_unsatisfiable(parse("A - B"))

    def test_tautology(self):
        assert is_tautology(parse("A | B"))
        assert is_tautology(parse("A"))  # covers its single-stream union
        assert not is_tautology(parse("A & B"))


class TestSimplify:
    @pytest.mark.parametrize(
        "text",
        [
            "A & B",
            "A - B",
            "A | B",
            "(A - B) & C",
            "A & (B | C)",
            "((A | B) - C) | (B & C)",
            "A - (A & B)",
        ],
    )
    def test_simplify_preserves_semantics(self, text: str):
        original = parse(text)
        simplified = simplify(original)
        assert equivalent(original, simplified)

    def test_unsatisfiable_collapses(self):
        simplified = simplify(parse("(A & B) - (A | B)"))
        assert is_unsatisfiable(simplified)
        assert simplified.to_text() == "(A - A)"

    def test_tautology_collapses_to_union(self):
        simplified = simplify(parse("(A - B) | (B - A) | (A & B)"))
        assert simplified.to_text() == "(A | B)"

    def test_canonical_for_equivalent_inputs(self):
        first = simplify(parse("A & (B | C)"))
        second = simplify(parse("(C & A) | (B & A)"))
        assert first == second

    def test_redundant_structure_shrinks(self):
        simplified = simplify(parse("A | (A & B) | (A & B & A)"))
        assert equivalent(simplified, parse("A"))

    def test_redundant_streams_eliminated(self):
        simplified = simplify(parse("(A & B) | (A - B) | (A & B & C)"))
        assert simplified.to_text() == "A"

    def test_irrelevant_intersection_context_eliminated(self):
        # B never matters: (A & B) | (A - B) == A regardless of B, C.
        simplified = simplify(parse("((A & B) | (A - B)) & (A | C | A)"))
        assert simplified.streams() <= {"A", "C"} or simplified.to_text() == "A"
        assert equivalent(simplified, parse("(A & B) | (A - B)"))

    def test_cascading_elimination(self):
        # After B is eliminated, C becomes eliminable too.
        text = "((A & B) | (A - B) | (A & C)) "
        simplified = simplify(parse(text))
        assert simplified.to_text() == "A"

    def test_exact_evaluation_matches(self):
        sets = {"A": {1, 2, 3}, "B": {2, 3, 4}, "C": {3, 4, 5}}
        original = parse("((A | B) - C) | (B & C)")
        simplified = simplify(original)
        assert original.evaluate(sets) == simplified.evaluate(sets)
