"""Unit tests for the elementary property checks (paper Figure 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checks import (
    combined_singleton_union_mask,
    empty_mask,
    identical_singleton_bucket,
    identical_singleton_mask,
    singleton_bucket,
    singleton_mask,
    singleton_union_bucket,
    singleton_union_mask,
)
from repro.core.family import SketchSpec
from repro.core.sketch import SketchHashes, SketchShape, TwoLevelHashSketch

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=4)


def fresh_sketch(seed: int = 0) -> TwoLevelHashSketch:
    hashes = SketchHashes.draw(np.random.default_rng(seed), SHAPE)
    return TwoLevelHashSketch(hashes, SHAPE)


def level_of(sketch: TwoLevelHashSketch, element: int) -> int:
    return sketch._level_of(element)


class TestSingletonBucket:
    def test_empty_bucket_is_not_singleton(self):
        sketch = fresh_sketch()
        assert not singleton_bucket(sketch, 0)

    def test_one_element_is_singleton(self):
        sketch = fresh_sketch()
        sketch.update(42, 1)
        assert singleton_bucket(sketch, level_of(sketch, 42))

    def test_one_element_with_multiplicity_is_singleton(self):
        sketch = fresh_sketch()
        sketch.update(42, 7)
        assert singleton_bucket(sketch, level_of(sketch, 42))

    def test_two_elements_same_bucket_detected(self):
        """Find two elements sharing a first-level bucket and confirm the
        second level separates them (whp)."""
        sketch = fresh_sketch(seed=1)
        by_level: dict[int, int] = {}
        pair = None
        for element in range(2000):
            level = level_of(sketch, element)
            if level in by_level:
                pair = (by_level[level], element, level)
                break
            by_level[level] = element
        assert pair is not None
        first, second, level = pair
        sketch.update(first, 1)
        sketch.update(second, 1)
        assert not singleton_bucket(sketch, level)

    def test_deleted_element_leaves_singleton(self):
        sketch = fresh_sketch(seed=2)
        sketch.update(10, 1)
        level = level_of(sketch, 10)
        # Pile another element into the same bucket, then delete it.
        other = next(
            element
            for element in range(11, 5000)
            if level_of(sketch, element) == level
        )
        sketch.update(other, 1)
        assert not singleton_bucket(sketch, level)
        sketch.update(other, -1)
        assert singleton_bucket(sketch, level)


class TestIdenticalSingletonBucket:
    def test_same_value_in_both(self):
        a, b = fresh_sketch(seed=3), fresh_sketch(seed=3)
        a.update(77, 1)
        b.update(77, 2)
        level = level_of(a, 77)
        assert identical_singleton_bucket(a, b, level)

    def test_different_values_rejected(self):
        a, b = fresh_sketch(seed=4), fresh_sketch(seed=4)
        # Find two elements in the same first-level bucket.
        by_level: dict[int, int] = {}
        pair = None
        for element in range(5000):
            level = level_of(a, element)
            if level in by_level and by_level[level] != element:
                pair = (by_level[level], element, level)
                break
            by_level[level] = element
        first, second, level = pair
        a.update(first, 1)
        b.update(second, 1)
        assert not identical_singleton_bucket(a, b, level)

    def test_empty_side_rejected(self):
        a, b = fresh_sketch(seed=5), fresh_sketch(seed=5)
        a.update(9, 1)
        assert not identical_singleton_bucket(a, b, level_of(a, 9))


class TestSingletonUnionBucket:
    def test_singleton_plus_empty(self):
        a, b = fresh_sketch(seed=6), fresh_sketch(seed=6)
        a.update(5, 1)
        level = level_of(a, 5)
        assert singleton_union_bucket(a, b, level)
        assert singleton_union_bucket(b, a, level)

    def test_identical_singletons(self):
        a, b = fresh_sketch(seed=7), fresh_sketch(seed=7)
        a.update(5, 1)
        b.update(5, 3)
        assert singleton_union_bucket(a, b, level_of(a, 5))

    def test_two_distinct_values_rejected(self):
        a, b = fresh_sketch(seed=8), fresh_sketch(seed=8)
        by_level: dict[int, int] = {}
        pair = None
        for element in range(5000):
            level = level_of(a, element)
            if level in by_level and by_level[level] != element:
                pair = (by_level[level], element, level)
                break
            by_level[level] = element
        first, second, level = pair
        a.update(first, 1)
        b.update(second, 1)
        assert not singleton_union_bucket(a, b, level)

    def test_both_empty_rejected(self):
        a, b = fresh_sketch(seed=9), fresh_sketch(seed=9)
        assert not singleton_union_bucket(a, b, 0)


class TestMaskParity:
    """The vectorised masks must agree with the scalar procedures."""

    def _populated_families(self, seed: int):
        spec = SketchSpec(num_sketches=12, shape=SHAPE, seed=seed)
        family_a = spec.build()
        family_b = spec.build()
        rng = np.random.default_rng(seed)
        shared = rng.integers(0, 2**20, size=30, dtype=np.uint64)
        only_a = rng.integers(0, 2**20, size=30, dtype=np.uint64)
        only_b = rng.integers(0, 2**20, size=30, dtype=np.uint64)
        family_a.update_batch(np.concatenate([shared, only_a]))
        family_b.update_batch(np.concatenate([shared, only_b]))
        return family_a, family_b

    @pytest.mark.parametrize("level", [0, 1, 3, 6, 10])
    def test_singleton_mask_parity(self, level: int):
        family_a, _ = self._populated_families(seed=10)
        mask = singleton_mask(family_a.level_slab(level))
        for index in range(len(family_a)):
            assert bool(mask[index]) == singleton_bucket(family_a.sketch(index), level)

    @pytest.mark.parametrize("level", [0, 2, 5, 9])
    def test_identical_singleton_mask_parity(self, level: int):
        family_a, family_b = self._populated_families(seed=11)
        mask = identical_singleton_mask(
            family_a.level_slab(level), family_b.level_slab(level)
        )
        for index in range(len(family_a)):
            expected = identical_singleton_bucket(
                family_a.sketch(index), family_b.sketch(index), level
            )
            assert bool(mask[index]) == expected

    @pytest.mark.parametrize("level", [0, 2, 5, 9])
    def test_singleton_union_mask_parity(self, level: int):
        family_a, family_b = self._populated_families(seed=12)
        mask = singleton_union_mask(
            family_a.level_slab(level), family_b.level_slab(level)
        )
        for index in range(len(family_a)):
            expected = singleton_union_bucket(
                family_a.sketch(index), family_b.sketch(index), level
            )
            assert bool(mask[index]) == expected

    @pytest.mark.parametrize("level", [0, 2, 5, 9])
    def test_combined_mask_agrees_with_pairwise_for_two_streams(self, level: int):
        """For two streams the merged-slab singleton test must agree with
        the paper's pairwise SingletonUnionBucket (up to second-level hash
        failures, which are deterministic given the counters — so exactly)."""
        family_a, family_b = self._populated_families(seed=13)
        slab_a = family_a.level_slab(level)
        slab_b = family_b.level_slab(level)
        combined = combined_singleton_union_mask([slab_a, slab_b])
        pairwise = singleton_union_mask(slab_a, slab_b)
        assert np.array_equal(combined, pairwise)


class TestEmptyMask:
    def test_detects_empty_and_nonempty(self):
        spec = SketchSpec(num_sketches=4, shape=SHAPE, seed=14)
        family = spec.build()
        assert empty_mask(family.level_slab(0)).all()
        family.update(3, 1)
        level = family.sketch(0)._level_of(3)
        assert not empty_mask(family.level_slab(level))[0]

    def test_combined_mask_requires_slabs(self):
        with pytest.raises(ValueError):
            combined_singleton_union_mask([])


class TestErrorProbability:
    def test_singleton_false_positive_rate_bounded(self):
        """Lemma 3.1: a two-element bucket is misclassified as a singleton
        with probability 2**-s over the second-level draw."""
        s = 8
        shape = SketchShape(domain_bits=20, num_second_level=s, independence=4)
        false_positives = 0
        trials = 600
        for seed in range(trials):
            hashes = SketchHashes.draw(np.random.default_rng(seed), shape)
            sketch = TwoLevelHashSketch(hashes, shape)
            # Force two distinct elements into one bucket by direct insert:
            # both land at their own levels; use a level where both collide.
            level_a = sketch._level_of(101)
            level_b = sketch._level_of(202)
            if level_a != level_b:
                continue
            sketch.update(101, 1)
            sketch.update(202, 1)
            if singleton_bucket(sketch, level_a):
                false_positives += 1
        # Collisions happen in ~1/4 of the trials; 2**-8 of those failing
        # puts the expected count well below 1.  Allow generous slack.
        assert false_positives <= 3
