"""Unit tests for the shared witness-estimation machinery."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.core.witness import BETA, choose_witness_level, run_witness_estimator

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=6)


class TestChooseWitnessLevel:
    def test_formula(self):
        union = 1000.0
        epsilon = 0.1
        expected = math.ceil(math.log2(BETA * union / (1 - epsilon)))
        assert choose_witness_level(union, epsilon, 64) == expected

    def test_monotone_in_union(self):
        small = choose_witness_level(100.0, 0.1, 64)
        large = choose_witness_level(100_000.0, 0.1, 64)
        assert large > small

    def test_zero_union(self):
        assert choose_witness_level(0.0, 0.1, 64) == 0

    def test_clamped_to_levels(self):
        assert choose_witness_level(1e30, 0.1, 64) == 63
        assert choose_witness_level(0.1, 0.9, 64) >= 0

    def test_beta_is_paper_optimum(self):
        assert BETA == 2.0


class TestRunWitnessEstimator:
    def _families(self, seed=0):
        spec = SketchSpec(num_sketches=32, shape=SHAPE, seed=seed)
        family_a, family_b = spec.build(), spec.build()
        rng = np.random.default_rng(seed)
        pool = rng.choice(2**20, size=512, replace=False).astype(np.uint64)
        family_a.update_batch(pool[:384])
        family_b.update_batch(pool[128:])
        return family_a, family_b

    def test_masks_receive_correct_slabs(self):
        family_a, family_b = self._families()
        seen = {}

        def witness_masks(slabs):
            seen["shapes"] = [slab.shape for slab in slabs]
            valid = np.ones(32, dtype=bool)
            witness = np.zeros(32, dtype=bool)
            return valid, witness

        result = run_witness_estimator([family_a, family_b], witness_masks, 0.1)
        assert seen["shapes"] == [(32, 8, 2), (32, 8, 2)]
        assert result.value == 0.0
        assert result.num_valid == 32

    def test_witness_intersected_with_valid(self):
        """A witness bit outside the valid mask must not count."""
        family_a, family_b = self._families(seed=1)

        def witness_masks(slabs):
            valid = np.zeros(32, dtype=bool)
            valid[:4] = True
            witness = np.ones(32, dtype=bool)  # deliberately unmasked
            return valid, witness

        result = run_witness_estimator([family_a, family_b], witness_masks, 0.1)
        assert result.num_valid == 4
        assert result.num_witnesses == 4  # clipped to the valid set
        assert result.value == pytest.approx(result.union_estimate)

    def test_zero_union_short_circuits(self):
        spec = SketchSpec(num_sketches=8, shape=SHAPE, seed=2)
        called = []

        def witness_masks(slabs):
            called.append(True)
            return np.ones(8, dtype=bool), np.ones(8, dtype=bool)

        result = run_witness_estimator(
            [spec.build(), spec.build()], witness_masks, 0.1
        )
        assert result.value == 0.0
        assert not called  # masks never consulted for empty streams

    def test_external_union_estimate_used(self):
        family_a, family_b = self._families(seed=3)

        def witness_masks(slabs):
            return np.ones(32, dtype=bool), np.ones(32, dtype=bool)

        result = run_witness_estimator(
            [family_a, family_b], witness_masks, 0.1, union_estimate=500.0
        )
        assert result.union_estimate == 500.0
        assert result.value == pytest.approx(500.0)

    def test_epsilon_validation(self):
        family_a, family_b = self._families(seed=4)
        with pytest.raises(ValueError):
            run_witness_estimator(
                [family_a, family_b], lambda slabs: (None, None), 1.0
            )
