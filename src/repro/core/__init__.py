"""Core contribution of the paper: 2-level hash sketches and estimators."""

from repro.core.bitmap import BitmapFamily
from repro.core.boosting import (
    boosted_estimate,
    estimate_expression_boosted,
    family_groups,
)
from repro.core.difference import atomic_difference_estimate, estimate_difference
from repro.core.explain import ExpressionExplanation, explain_expression
from repro.core.intervals import (
    ConfidenceInterval,
    wilson_interval,
    witness_confidence_interval,
)
from repro.core.expression import estimate_expression
from repro.core.family import SketchFamily, SketchSpec, check_same_coins
from repro.core.plan import HashPlan, HashPlanStats, plan_for
from repro.core.sizing import (
    SynopsisPlan,
    recommend_spec,
    second_level_hashes_needed,
    union_sketches_needed,
    witness_sketches_needed,
)
from repro.core.intersection import (
    atomic_intersection_estimate,
    estimate_intersection,
)
from repro.core.results import UnionEstimate, WitnessEstimate
from repro.core.sketch import SketchHashes, SketchShape, TwoLevelHashSketch
from repro.core.union import estimate_union

__all__ = [
    "BitmapFamily",
    "SketchFamily",
    "SketchSpec",
    "SketchHashes",
    "SketchShape",
    "TwoLevelHashSketch",
    "check_same_coins",
    "HashPlan",
    "HashPlanStats",
    "plan_for",
    "estimate_union",
    "estimate_difference",
    "estimate_intersection",
    "estimate_expression",
    "atomic_difference_estimate",
    "atomic_intersection_estimate",
    "UnionEstimate",
    "WitnessEstimate",
    "ExpressionExplanation",
    "explain_expression",
    "SynopsisPlan",
    "recommend_spec",
    "second_level_hashes_needed",
    "union_sketches_needed",
    "witness_sketches_needed",
    "boosted_estimate",
    "estimate_expression_boosted",
    "family_groups",
    "ConfidenceInterval",
    "wilson_interval",
    "witness_confidence_interval",
]
