"""Session-style update-stream generation.

The paper's motivating workloads are *session* streams: an IP flow, VPN
circuit, or login session opens (insertion) and later closes (deletion).
:func:`session_trace` synthesises such traffic: timestamped open/close
update pairs with configurable source popularity (uniform or Zipf),
session-duration distribution, and cross-stream overlap — the realistic
substrate behind the examples and the windowed/continuous-query tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.distributions import uniform_multiset, zipf_multiset
from repro.streams.updates import Update

__all__ = ["SessionEvent", "session_trace"]


@dataclass(frozen=True)
class SessionEvent:
    """One timestamped update of a session trace."""

    update: Update
    at: float


def session_trace(
    stream: str,
    pool: np.ndarray,
    num_sessions: int,
    rng: np.random.Generator,
    duration_mean: float = 60.0,
    arrival_rate: float = 10.0,
    skew: float | None = None,
) -> list[SessionEvent]:
    """A time-ordered open/close update trace for one stream.

    Parameters
    ----------
    stream:
        Stream identifier the updates carry.
    pool:
        Source addresses sessions draw from (with repetition — one source
        can run many sessions over time, and even concurrently; net
        frequencies stay legal because every close matches an open).
    num_sessions:
        Number of open/close pairs to generate.
    rng:
        Randomness source.
    duration_mean:
        Mean session duration (exponentially distributed).
    arrival_rate:
        Session opens per unit time (Poisson arrivals).
    skew:
        ``None`` for uniform source popularity, else the Zipf exponent.

    Returns
    -------
    list[SessionEvent]
        Events sorted by time; every close follows its open, so replaying
        the trace through any legality-checking sink is valid.
    """
    if num_sessions < 0:
        raise ValueError("num_sessions must be non-negative")
    if duration_mean <= 0 or arrival_rate <= 0:
        raise ValueError("duration_mean and arrival_rate must be positive")
    if num_sessions == 0:
        return []

    if skew is None:
        sources = uniform_multiset(pool, num_sessions, rng)
    else:
        sources = zipf_multiset(pool, num_sessions, rng, skew=skew)

    opens = np.cumsum(rng.exponential(1.0 / arrival_rate, size=num_sessions))
    durations = rng.exponential(duration_mean, size=num_sessions)
    closes = opens + durations

    events = [
        SessionEvent(Update(stream, int(source), +1), float(at))
        for source, at in zip(sources, opens)
    ]
    events.extend(
        SessionEvent(Update(stream, int(source), -1), float(at))
        for source, at in zip(sources, closes)
    )
    events.sort(key=lambda event: event.at)
    return events
