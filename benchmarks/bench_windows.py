"""Windowed-engine bench: rotation cost and windowed-query latency.

The scenario is the tentpole's steady state: three update streams feed
a windowed engine (per-stream bucket rings, span = ``NUM_BUCKETS``
buckets), standing set-expression queries are evaluated every tick over
the most recent window, and the clock advances one tick at a time so
the rings rotate — newest bucket absorbing ingest, oldest bucket
subtracted out — while the all-time synopses keep growing.

Two paths produce the same windowed state and are asserted
**bit-identical at every bucket boundary** before any timing is
trusted:

* **ring** — the windowed engine itself: whole-bucket expiry by one
  synopsis subtraction per rotated-out bucket, O(1) in the number of
  in-window updates;
* **driver** — the pre-change way to get windowed semantics: a
  :class:`~repro.streams.windows.SlidingWindowDriver` holding every
  in-window update in a deque and replaying per-update inverses into a
  flat engine.

Measured per tick (medians over the run): ingest+advance cost of each
path, and on the ring engine the windowed-query latency next to the
same expressions asked all-time — the windowed premium is the price of
the ring indirection and its cache keying.  Rotation accounting
(rotations, buckets expired, empty expiries) and the query-cache
counters land in the report so regressions in the dirty-level
interaction show up as recompute storms, not just milliseconds.

Results go to ``BENCH_windows.json``; ``--smoke`` runs a reduced
matrix with the same assertions for CI.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

import numpy as np

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.engine import StreamEngine
from repro.streams.updates import Update
from repro.streams.windows import SlidingWindowDriver

STREAMS = "ABC"
EXPRESSIONS = ("A & B", "(A & B) - C", "(A - B) | (B - C)")
BUCKET_WIDTH = 4.0  # ticks per bucket
NUM_BUCKETS = 4
SPAN = BUCKET_WIDTH * NUM_BUCKETS


def build_spec(num_sketches: int, num_second_level: int, seed: int) -> SketchSpec:
    shape = SketchShape(
        domain_bits=20, num_second_level=num_second_level, independence=6
    )
    return SketchSpec(num_sketches=num_sketches, shape=shape, seed=seed)


def run_bench(
    num_ticks: int,
    updates_per_tick: int,
    num_sketches: int,
    num_second_level: int,
    epsilon: float = 0.15,
    seed: int = 9,
) -> dict:
    spec = build_spec(num_sketches, num_second_level, seed)
    ring = StreamEngine(
        spec, window_span=SPAN, bucket_width=BUCKET_WIDTH, batch_size=65536
    )
    flat = StreamEngine(spec, batch_size=65536)
    driver = SlidingWindowDriver(SPAN, flat)

    rng = np.random.default_rng(seed)
    ring_ticks: list[float] = []
    driver_ticks: list[float] = []
    windowed_query_ticks: list[float] = []
    alltime_query_ticks: list[float] = []
    boundaries_checked = 0
    stats_before = ring.query_stats()

    for tick in range(1, num_ticks + 1):
        now = float(tick)
        elements = rng.integers(0, 2**20, size=updates_per_tick)
        batch = [
            Update(STREAMS[index % 3], int(element), 1)
            for index, element in enumerate(elements)
        ]

        started = time.perf_counter()
        ring.observe_many((update, now) for update in batch)
        ring.advance_to(now)
        ring.flush()
        ring_ticks.append(time.perf_counter() - started)

        started = time.perf_counter()
        driver.observe_many((update, now) for update in batch)
        driver.advance_to(now)
        flat.flush()
        driver_ticks.append(time.perf_counter() - started)

        started = time.perf_counter()
        windowed = [
            ring.query(expression, epsilon, window=SPAN)
            for expression in EXPRESSIONS
        ]
        windowed_query_ticks.append(time.perf_counter() - started)

        started = time.perf_counter()
        for expression in EXPRESSIONS:
            ring.query(expression, epsilon)
        alltime_query_ticks.append(time.perf_counter() - started)

        if now % BUCKET_WIDTH == 0:
            # Bucket boundary: whole-bucket expiry (ring) and per-update
            # expiry (driver) cover exactly the same trace suffix.
            boundaries_checked += 1
            for name in STREAMS:
                assert np.array_equal(
                    ring.window_family(name).counters,
                    flat.family(name).counters,
                ), f"ring diverged from driver on {name} at tick {tick}"
            truth = [flat.query(e, epsilon) for e in EXPRESSIONS]
            for ours, theirs in zip(windowed, truth):
                assert ours.value == theirs.value, (
                    f"windowed query diverged at tick {tick}"
                )

    window_stats = ring.window_stats()
    stats = ring.query_stats()
    assert boundaries_checked == num_ticks // BUCKET_WIDTH
    assert window_stats.rotations >= boundaries_checked - 1
    expected_expired = max(0, int(num_ticks // BUCKET_WIDTH) - NUM_BUCKETS)
    assert window_stats.buckets_expired >= expected_expired * len(STREAMS)

    ring_ms = 1000.0 * statistics.median(ring_ticks)
    driver_ms = 1000.0 * statistics.median(driver_ticks)
    windowed_ms = 1000.0 * statistics.median(windowed_query_ticks)
    alltime_ms = 1000.0 * statistics.median(alltime_query_ticks)
    return {
        "num_ticks": num_ticks,
        "updates_per_tick": updates_per_tick,
        "num_sketches": num_sketches,
        "num_second_level": num_second_level,
        "epsilon": epsilon,
        "bucket_width_ticks": BUCKET_WIDTH,
        "num_buckets": NUM_BUCKETS,
        "boundaries_checked": boundaries_checked,
        "ring_ingest_ms_per_tick": ring_ms,
        "driver_ingest_ms_per_tick": driver_ms,
        "ingest_ratio_vs_driver": driver_ms / ring_ms if ring_ms else None,
        "windowed_query_ms_per_tick": windowed_ms,
        "alltime_query_ms_per_tick": alltime_ms,
        "windowed_query_premium": (
            windowed_ms / alltime_ms if alltime_ms else None
        ),
        "rotations": window_stats.rotations,
        "buckets_expired": window_stats.buckets_expired,
        "empty_expiries": window_stats.empty_expiries,
        "subwindow_rebuilds": window_stats.subwindow_rebuilds,
        "window_queries": stats.window_queries - stats_before.window_queries,
        "cache_hits": stats.cache_hits - stats_before.cache_hits,
        "revalidations": stats.revalidations - stats_before.revalidations,
        "recomputes": stats.recomputes - stats_before.recomputes,
    }


def print_report(report: dict) -> None:
    for run in report["runs"]:
        print(
            f"\n{run['num_ticks']} ticks x {run['updates_per_tick']:,} "
            f"updates, r={run['num_sketches']}, "
            f"s={run['num_second_level']}, "
            f"{run['num_buckets']} buckets x {run['bucket_width_ticks']} ticks"
        )
        print(
            f"  ingest+rotate  ring {run['ring_ingest_ms_per_tick']:.3f} ms"
            f"  driver {run['driver_ingest_ms_per_tick']:.3f} ms"
            f"  ({run['ingest_ratio_vs_driver']:.2f}x)"
        )
        print(
            f"  queries        windowed {run['windowed_query_ms_per_tick']:.3f} ms"
            f"  all-time {run['alltime_query_ms_per_tick']:.3f} ms"
            f"  (premium {run['windowed_query_premium']:.2f}x)"
        )
        print(
            f"  rotations {run['rotations']}  expired {run['buckets_expired']}"
            f"  empty {run['empty_expiries']}"
            f"  recomputes {run['recomputes']}  hits {run['cache_hits']}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="windowed-engine rotation cost and query latency"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced matrix with the same bit-identity assertions (CI)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_windows.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        matrix = [
            # 28 ticks = 7 boundaries on a 4-bucket ring: the window
            # genuinely rolls, so expiry subtraction is exercised (and
            # bit-checked), not just rotation.
            dict(
                num_ticks=28,
                updates_per_tick=200,
                num_sketches=64,
                num_second_level=8,
            )
        ]
    else:
        matrix = [
            dict(
                num_ticks=48,
                updates_per_tick=1000,
                num_sketches=128,
                num_second_level=8,
            ),
            dict(
                num_ticks=48,
                updates_per_tick=4000,
                num_sketches=256,
                num_second_level=16,
            ),
        ]
    report = {"smoke": args.smoke, "runs": [run_bench(**config) for config in matrix]}
    print_report(report)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
