"""First-class windowed set expressions: bucket rings, no deques.

Where ``examples/sliding_window.py`` expires per update (the source
replays an inverse for every aging session), this example uses the
windowed engine directly: each stream keeps a ring of time-bucketed
sketches, the newest bucket absorbs ingest, and expiry is one synopsis
subtraction per rotated-out bucket — state stays O(buckets), however
much traffic the window holds.

The scenario: two edge routers and a scrubbing centre report source
addresses; the operator watches "sources seen at both routers but not
yet scrubbed, over the last hour" on a rolling basis, with a standing
query that pages once when the count breaches — and clears by itself
as the offending burst ages out of the window.

Run:  python examples/windowed_queries.py
"""

from __future__ import annotations

import numpy as np

from repro import SketchSpec, StreamEngine, Update
from repro.streams.continuous import ContinuousQueryProcessor

WINDOW = 3600.0  # one hour
BUCKET = 900.0  # 15-minute buckets: expiry granularity
EXPR = "(R1 & R2) - SCRUBBED"


def burst(rng, stream, pool, size, at, processor):
    for element in rng.choice(pool, size=size, replace=False):
        processor.observe(Update(stream, int(element), 1), at=at)


def main() -> None:
    rng = np.random.default_rng(99)
    engine = StreamEngine(
        SketchSpec(num_sketches=256, seed=13),
        window_span=WINDOW,
        bucket_width=BUCKET,
    )
    processor = ContinuousQueryProcessor(engine)
    pages = []
    processor.register(
        "unscrubbed-overlap",
        EXPR,
        every=2000,
        epsilon=0.15,
        threshold=400.0,
        window=WINDOW,
        on_alert=lambda query, obs: pages.append(
            f"  PAGE {query.name}: ~{obs.value:.0f} at update {obs.at_update}"
        ),
    )

    sources = rng.choice(2**30, size=20_000, replace=False)
    shared = sources[:3000]  # addresses both routers see

    # Quarter 1-2: normal traffic, small overlap, mostly scrubbed.
    for quarter in (1, 2):
        at = quarter * BUCKET
        burst(rng, "R1", sources[3000:9000], 2500, at, processor)
        burst(rng, "R2", sources[9000:15000], 2500, at, processor)
        burst(rng, "R1", shared[:300], 300, at, processor)
        burst(rng, "R2", shared[:300], 300, at, processor)
        burst(rng, "SCRUBBED", shared[:200], 200, at, processor)

    # Quarter 3: an attack — a large shared cohort, barely scrubbed.
    at = 3 * BUCKET
    burst(rng, "R1", shared, 3000, at, processor)
    burst(rng, "R2", shared, 3000, at, processor)

    estimate = engine.query(EXPR, epsilon=0.15, window=WINDOW)
    print(f"|{EXPR}| over the last hour ~= {estimate.value:.0f}")
    print(f"same expression, last 15 minutes ~= "
          f"{engine.query(EXPR, epsilon=0.15, window=BUCKET).value:.0f}")
    for line in pages:
        print(line)

    # The window rolls: five quiet hours later the attack cohort has
    # aged out bucket by bucket — no deletions were ever emitted — and
    # the standing query cleared without a page storm (edge-triggered:
    # the sustained breach above paged exactly once).
    engine.advance_to(6 * WINDOW)
    estimate = engine.query(EXPR, epsilon=0.15, window=WINDOW)
    print(f"five hours later, last hour ~= {estimate.value:.0f} "
          f"(pages so far: {len(pages)})")

    stats = engine.window_stats()
    print(
        f"ring accounting: {stats.rotations} rotations, "
        f"{stats.buckets_expired} buckets expired "
        f"({stats.empty_expiries} empty: no counters touched)"
    )


if __name__ == "__main__":
    main()
