"""Unit tests for the element-value distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.distributions import uniform_multiset, zipf_multiset


class TestUniformMultiset:
    def test_size_and_membership(self):
        rng = np.random.default_rng(150)
        pool = np.arange(100, dtype=np.uint64)
        drawn = uniform_multiset(pool, 5000, rng)
        assert drawn.shape == (5000,)
        assert set(int(v) for v in drawn) <= set(int(v) for v in pool)

    def test_roughly_uniform(self):
        rng = np.random.default_rng(151)
        pool = np.arange(10, dtype=np.uint64)
        drawn = uniform_multiset(pool, 50_000, rng)
        counts = np.bincount(drawn.astype(np.int64), minlength=10)
        assert counts.min() > 4000

    def test_zero_items(self):
        rng = np.random.default_rng(152)
        assert uniform_multiset(np.arange(5), 0, rng).shape == (0,)

    def test_validation(self):
        rng = np.random.default_rng(153)
        with pytest.raises(ValueError):
            uniform_multiset(np.array([]), 10, rng)
        with pytest.raises(ValueError):
            uniform_multiset(np.arange(5), -1, rng)


class TestZipfMultiset:
    def test_size_and_membership(self):
        rng = np.random.default_rng(154)
        pool = np.arange(100, dtype=np.uint64)
        drawn = zipf_multiset(pool, 5000, rng)
        assert drawn.shape == (5000,)
        assert set(int(v) for v in drawn) <= set(int(v) for v in pool)

    def test_skew_favours_early_ranks(self):
        rng = np.random.default_rng(155)
        pool = np.arange(1000, dtype=np.uint64)
        drawn = zipf_multiset(pool, 50_000, rng, skew=1.2)
        counts = np.bincount(drawn.astype(np.int64), minlength=1000)
        # Rank 1 should dominate rank 100 heavily under Zipf(1.2).
        assert counts[0] > 10 * max(counts[99], 1)

    def test_higher_skew_more_concentrated(self):
        rng = np.random.default_rng(156)
        pool = np.arange(500, dtype=np.uint64)
        mild = zipf_multiset(pool, 20_000, np.random.default_rng(1), skew=0.5)
        steep = zipf_multiset(pool, 20_000, np.random.default_rng(1), skew=2.0)
        assert len(np.unique(steep)) < len(np.unique(mild))

    def test_validation(self):
        rng = np.random.default_rng(157)
        with pytest.raises(ValueError):
            zipf_multiset(np.arange(5), 10, rng, skew=0)
        with pytest.raises(ValueError):
            zipf_multiset(np.array([]), 10, rng)
        with pytest.raises(ValueError):
            zipf_multiset(np.arange(5), -2, rng)
