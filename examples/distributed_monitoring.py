"""Distributed stream summarisation with stored coins.

The paper's processing model (and Gibbons-Tirthapura's distributed-streams
model): each site observes part of the traffic and maintains local 2-level
hash sketches drawn from a *shared seed*; the serialised synopses ship to
a coordinator that merges them by counter addition (sketch linearity) and
answers set-expression queries over the global streams — without any site
ever exchanging raw data.

The scenario: two data centres each see a share of the user logins for two
services; the business wants the number of users active on service X but
not service Y, across both data centres.

Run:  python examples/distributed_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import Coordinator, ExactStreamStore, SketchSpec, StreamSite, Update


def main() -> None:
    rng = np.random.default_rng(99)

    # The shared spec IS the stored coins: both sites must use it.
    spec = SketchSpec(num_sketches=384, seed=2024)

    east = StreamSite("dc-east", spec)
    west = StreamSite("dc-west", spec)
    exact = ExactStreamStore()

    users = rng.choice(2**30, size=50_000, replace=False)
    service_x_users = users[:35_000]
    service_y_users = users[20_000:]  # 15k overlap with X

    print("sites observing login events ...")
    for service, population in (("X", service_x_users), ("Y", service_y_users)):
        for user in population:
            # Each login lands at whichever data centre is closer; a user
            # can appear at both (sketch merge handles the multiset sum,
            # and cardinality counts distinct users anyway).
            site = east if rng.random() < 0.6 else west
            update = Update(service, int(user), +1)
            site.observe(update)
            exact.apply(update)

    print("shipping serialised synopses to the coordinator ...")
    payload_east = east.export()
    payload_west = west.export()
    shipped_bytes = sum(len(p) for p in payload_east.values()) + sum(
        len(p) for p in payload_west.values()
    )
    print(f"  total shipped: {shipped_bytes / 1e6:.1f} MB")

    coordinator = Coordinator(spec)
    coordinator.collect(payload_east)
    coordinator.collect(payload_west)

    for expression in ("X - Y", "X & Y", "X | Y"):
        estimate = coordinator.query(expression, epsilon=0.1)
        truth = exact.cardinality(expression)
        error = abs(estimate.value - truth) / truth if truth else 0.0
        print(
            f"  |{expression:6s}| ≈ {estimate.value:10,.0f}   "
            f"exact {truth:8,}   error {100 * error:5.1f}%"
        )


if __name__ == "__main__":
    main()
