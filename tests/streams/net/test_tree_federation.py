"""Federation trees: coordinators folding into pluggable engines and
re-exporting aggregated deltas to a parent coordinator.

The acceptance scenario builds a 2-level tree — two leaf coordinators
with two sites each, one leaf folding into a 2-shard
:class:`~repro.streams.sharded.ShardedEngine` — and pushes every update
through fault-injecting proxies (mid-frame cuts, duplicate deliveries)
on both the site→leaf and leaf→root hops, restarts one leaf from its
checkpoint and one site under a reused id, and then requires the root's
``query``, ``query_union``, and a 3-stream expression to be
**bit-identical** to one flat :class:`~repro.streams.engine.StreamEngine`
fed the concatenated updates.  Linearity makes the tree's shape
invisible; the delta protocol makes its failures invisible.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.engine import StreamEngine
from repro.streams.net.coordinator import CoordinatorServer
from repro.streams.net.site import SiteClient, SiteConnectionError
from repro.streams.sharded import ShardedEngine
from repro.streams.updates import Update

from tests.streams.net.faults import FaultyTransport

SHAPE = SketchShape(domain_bits=14, num_second_level=8, independence=4)
SPEC = SketchSpec(num_sketches=16, shape=SHAPE, seed=41)

TIMEOUT = 60.0
STREAMS = "ABC"


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


def sharded_factory(spec: SketchSpec) -> ShardedEngine:
    # Serial executor: deterministic, single-core container.
    return ShardedEngine(spec, num_shards=2, executor="serial")


def make_client(site_id: str, port: int, seed: int) -> SiteClient:
    return SiteClient(
        site_id=site_id,
        spec=SPEC,
        port=port,
        connect_timeout=1.0,
        io_timeout=0.3,
        max_retries=80,
        backoff_base=0.005,
        backoff_cap=0.03,
        rng=random.Random(seed),
    )


def uplink_options(seed: int) -> dict:
    return dict(
        connect_timeout=1.0,
        io_timeout=0.5,
        max_retries=80,
        backoff_base=0.005,
        backoff_cap=0.03,
        rng=random.Random(seed),
    )


def random_batch(rng: random.Random, size: int) -> list[Update]:
    return [
        Update(
            stream=rng.choice(STREAMS),
            element=rng.randrange(1, 8000),
            delta=rng.choice([1, 1, 1, -1]),
        )
        for _ in range(size)
    ]


def assert_root_matches(root: CoordinatorServer, truth: StreamEngine):
    truth.flush()
    coordinator = root.coordinator
    assert coordinator.stream_names() == truth.stream_names()
    for name, family in truth.families().items():
        assert coordinator.families()[name] == family, name
    assert (
        coordinator.query("A", 0.25).value == truth.query("A", 0.25).value
    )
    assert (
        coordinator.query_union(list(STREAMS), 0.25).value
        == truth.query_union(list(STREAMS), 0.25).value
    )
    three_stream = "(A - B) | C"
    assert (
        coordinator.query(three_stream, 0.25).value
        == truth.query(three_stream, 0.25).value
    )


class TestTreeFederation:
    def test_two_level_tree_survives_faults_and_restarts(self, tmp_path):
        """The acceptance scenario (see module docstring)."""

        async def scenario():
            rng = random.Random(2024)
            truth = StreamEngine(SPEC)

            root = CoordinatorServer(SPEC, port=0)
            await root.start()

            # Fault proxies on the leaf→root hops: duplicates and
            # mid-frame cuts, budget-capped so convergence is guaranteed.
            up1 = FaultyTransport(
                root.port, random.Random(11), duplicate=0.25, cut=0.2,
                max_faults=4,
            )
            up2 = FaultyTransport(
                root.port, random.Random(12), duplicate=0.25, cut=0.2,
                max_faults=4,
            )
            await up1.start()
            await up2.start()

            leaf1_dir = tmp_path / "leaf1"
            leaf1 = CoordinatorServer(
                SPEC,
                port=0,
                checkpoint_dir=leaf1_dir,
                engine_factory=sharded_factory,
                parent_port=up1.port,
                uplink_id="leaf1",
                uplink_options=uplink_options(21),
            )
            leaf2 = CoordinatorServer(
                SPEC,
                port=0,
                parent_port=up2.port,
                uplink_id="leaf2",
                uplink_every=2,  # auto-ship every 2 applied site deltas
                uplink_options=uplink_options(22),
            )
            await leaf1.start()
            await leaf2.start()
            leaf1_port = leaf1.port

            # Fault proxies on the site→leaf hops.
            site_proxies = {}
            for i, (site_id, leaf) in enumerate(
                [("s1", leaf1), ("s2", leaf1), ("s3", leaf2), ("s4", leaf2)]
            ):
                proxy = FaultyTransport(
                    leaf.port, random.Random(30 + i),
                    duplicate=0.2, cut=0.15, max_faults=4,
                )
                await proxy.start()
                site_proxies[site_id] = proxy
            clients = {
                site_id: make_client(site_id, proxy.port, seed=40 + i)
                for i, (site_id, proxy) in enumerate(site_proxies.items())
            }

            async def observe_and_ship(site_id, size):
                batch = random_batch(rng, size)
                clients[site_id].observe_many(batch)
                truth.process_many(batch)
                await clients[site_id].ship()

            # Round 1: everything flows; leaf1 ships explicitly (cutting
            # its uplink exports through a checkpoint), leaf2 auto-ships.
            for site_id in clients:
                await observe_and_ship(site_id, 25)
            await leaf1.ship_upstream()

            # Round 2, then a leaf restart-from-checkpoint: the deltas
            # applied after leaf1's last checkpoint are lost with the
            # process and re-synced from the sites' retained tails; the
            # restored uplink keeps its incarnation, so the root sees an
            # unbroken peer.
            for site_id in ("s1", "s2"):
                await observe_and_ship(site_id, 20)
            await leaf1.stop()
            leaf1.coordinator.fold_engine.close()
            leaf1 = CoordinatorServer.restore(
                leaf1_dir,
                port=leaf1_port,
                engine_factory=sharded_factory,
                parent_port=up1.port,
                uplink_id="leaf1",
                uplink_options=uplink_options(23),
            )
            assert leaf1.uplink.site.incarnation  # restored, not fresh
            await leaf1.start()
            for site_id in ("s1", "s2"):
                await observe_and_ship(site_id, 15)

            # A site restart under a reused id: ship, make it durable at
            # the leaf, then replace the process (fresh incarnation).
            leaf1.checkpoint()
            await clients["s2"].close()
            old_incarnation = clients["s2"].site.incarnation
            clients["s2"] = make_client(
                "s2", site_proxies["s2"].port, seed=55
            )
            assert clients["s2"].site.incarnation != old_incarnation
            await observe_and_ship("s2", 20)
            await observe_and_ship("s3", 20)
            await observe_and_ship("s4", 20)

            # Drain the tree and compare against the flat engine.
            await leaf1.ship_upstream()
            await leaf2.ship_upstream()
            assert_root_matches(root, truth)

            # The faults were real, and the root saw uplink peers.
            injected = sum(
                p.faults_injected
                for p in [up1, up2, *site_proxies.values()]
            )
            assert injected > 0
            root_stats = root.stats()
            assert root_stats["leaf1"].role == "uplink"
            assert root_stats["leaf2"].role == "uplink"
            assert root_stats["leaf1"].deltas_applied >= 2
            rollup = root.transport_rollup()
            assert rollup.deltas_applied == sum(
                s.deltas_applied for s in root_stats.values()
            )
            leaf1_rollup = leaf1.transport_rollup()
            assert leaf1_rollup.deltas_shipped >= 1  # the uplink hop

            for client in clients.values():
                await client.close()
            for proxy in [up1, up2, *site_proxies.values()]:
                await proxy.stop()
            await leaf1.stop()
            await leaf2.stop()
            await root.stop()
            leaf1.coordinator.fold_engine.close()

        run(scenario())

    def test_uplink_retained_exports_survive_shutdown(self, tmp_path):
        """Regression (shutdown-flush fix): a leaf that cannot reach its
        parent at shutdown persists the unacked uplink exports in its
        final checkpoint; the next life delivers them bit-identically."""

        async def scenario():
            truth = StreamEngine(SPEC)
            rng = random.Random(7)
            leaf_dir = tmp_path / "leaf"

            root = CoordinatorServer(SPEC, port=0)
            await root.start()
            parent_port = root.port
            # Parent goes down before the leaf ever ships upstream.
            await root.stop()

            leaf = CoordinatorServer(
                SPEC,
                port=0,
                checkpoint_dir=leaf_dir,
                parent_port=parent_port,
                uplink_id="leaf",
                uplink_options=dict(
                    connect_timeout=0.2, io_timeout=0.2, max_retries=1,
                    backoff_base=0.005, backoff_cap=0.01,
                    rng=random.Random(1),
                ),
            )
            await leaf.start()
            client = make_client("site", leaf.port, seed=3)
            batch = random_batch(rng, 40)
            client.observe_many(batch)
            truth.process_many(batch)
            await client.ship()

            # Shutdown while the parent is unreachable: the cut export
            # must land in the checkpoint, not evaporate with the
            # process.
            with pytest.raises(SiteConnectionError):
                await leaf.ship_upstream()
            leaf.checkpoint()
            retained_before = leaf.uplink.site.retained_exports
            assert retained_before >= 1
            await client.close()
            await leaf.stop()

            # Leaf life 2 + parent back (same port): the restored
            # retained tail is all it ships — no site re-sync needed.
            root = CoordinatorServer(SPEC, port=parent_port)
            await root.start()
            leaf = CoordinatorServer.restore(
                leaf_dir,
                port=0,
                parent_port=parent_port,
                uplink_options=uplink_options(5),
            )
            assert leaf.uplink.site.retained_exports == retained_before
            await leaf.start()
            await leaf.uplink.flush_retained()
            assert_root_matches(root, truth)

            await leaf.stop()
            await root.stop()

        run(scenario())

    def test_checkpoint_cut_keeps_parent_consistent_across_leaf_restart(
        self, tmp_path
    ):
        """The tree-consistency invariant: an export the parent applied
        before the leaf crashed is regenerated bit-identically by the
        restored leaf (cut-at-checkpoint means the parent can never hold
        state the checkpoint cannot reproduce)."""

        async def scenario():
            truth = StreamEngine(SPEC)
            rng = random.Random(13)
            leaf_dir = tmp_path / "leaf"

            root = CoordinatorServer(SPEC, port=0)
            await root.start()

            leaf = CoordinatorServer(
                SPEC,
                port=0,
                checkpoint_dir=leaf_dir,
                parent_port=root.port,
                uplink_id="leaf",
                uplink_options=uplink_options(6),
            )
            await leaf.start()
            client = make_client("site", leaf.port, seed=8)

            batch = random_batch(rng, 30)
            client.observe_many(batch)
            truth.process_many(batch)
            await client.ship()
            # Ship upstream (checkpoint + deliver), then apply more site
            # deltas that never reach a checkpoint — the crash loses
            # them at the leaf, the sites re-ship them.
            await leaf.ship_upstream()
            batch = random_batch(rng, 30)
            client.observe_many(batch)
            truth.process_many(batch)
            await client.ship()
            await leaf.stop()

            restored = CoordinatorServer.restore(
                leaf_dir,
                port=leaf.port,
                parent_port=root.port,
                uplink_options=uplink_options(9),
            )
            # Same incarnation and sequence as the parent already tracks.
            assert (
                restored.uplink.site.incarnation
                == leaf.uplink.site.incarnation
            )
            await restored.start()
            await client.connect()  # re-sync the lost tail
            await restored.ship_upstream()
            assert_root_matches(root, truth)

            await client.close()
            await restored.stop()
            await root.stop()

        run(scenario())
