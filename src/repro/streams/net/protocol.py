"""Length-framed wire protocol for shipping delta exports over TCP.

Every message travels as one frame::

    u32 frame_length | frame

    frame := u32 header_length | header (UTF-8 JSON) | blob*

The header is a small JSON object with a ``type`` field; binary counter
payloads ride as raw blobs after the header, their lengths listed in the
header's ``blobs`` array (in order).  Keeping counters out of the JSON
avoids base64 inflation — a delta export's payload bytes go on the wire
exactly as :meth:`~repro.core.family.SketchFamily.to_bytes` produced
them.

Message types
-------------

``hello``   (site → coordinator): ``site_id``, ``incarnation``,
            ``version``, and a ``role`` — ``"site"`` for a leaf
            observer, ``"uplink"`` for a child coordinator re-exporting
            aggregated deltas up a federation tree.  First frame on
            every connection.
``welcome`` (coordinator → site): ``sequence`` (last applied for the
            site), ``durable`` (last checkpoint-covered).  The site
            prunes retained exports ≤ ``durable`` and re-ships every
            retained export > ``sequence`` — the re-sync that makes
            coordinator fail-over transparent.
``delta``   (site → coordinator): ``site_id``, ``sequence``,
            ``streams`` (names, in blob order); blobs are the delta
            counter payloads.
``ack``     (coordinator → site): ``sequence`` (the site's last applied
            sequence *after* handling the frame), ``durable``.  An ack
            whose ``sequence`` is below the just-shipped export signals
            a gap; the site rewinds and re-ships from ``sequence``.
``error``   (either direction): ``message``; the connection closes.

All integers are big-endian.  Frames above ``max_bytes`` (default
64 MiB) are rejected before allocation — a garbage length prefix cannot
make either endpoint swallow gigabytes.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Sequence

from repro.errors import ReproError
from repro.streams.distributed import DeltaExport

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ROLES",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "read_message",
    "write_message",
    "hello_message",
    "welcome_message",
    "delta_message",
    "ack_message",
    "error_message",
    "export_from_message",
]

PROTOCOL_VERSION = 1

#: Default refusal threshold for a single frame.  Far above any sane
#: delta (a 512-sketch, 16-column synopsis is ~4 MiB per stream) but
#: small enough that a corrupt length prefix fails fast.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(ReproError, ValueError):
    """A frame or message violated the wire protocol."""


# -- message encoding ---------------------------------------------------------


def encode_message(header: dict, blobs: Sequence[bytes] = ()) -> bytes:
    """Serialise ``header`` plus binary ``blobs`` into one frame payload."""
    head = dict(header)
    head["blobs"] = [len(blob) for blob in blobs]
    header_bytes = json.dumps(head, separators=(",", ":")).encode("utf-8")
    return b"".join(
        [_LENGTH.pack(len(header_bytes)), header_bytes, *blobs]
    )


def decode_message(payload: bytes) -> tuple[dict, list[bytes]]:
    """Inverse of :func:`encode_message`; validates structure strictly."""
    if len(payload) < _LENGTH.size:
        raise ProtocolError("frame too short for a header length")
    (header_length,) = _LENGTH.unpack_from(payload)
    offset = _LENGTH.size
    if offset + header_length > len(payload):
        raise ProtocolError("frame shorter than its declared header")
    try:
        header = json.loads(payload[offset : offset + header_length])
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"unparseable message header: {exc}") from exc
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError("message header must be an object with 'type'")
    offset += header_length
    blobs: list[bytes] = []
    for length in header.pop("blobs", []):
        if not isinstance(length, int) or length < 0:
            raise ProtocolError("blob lengths must be non-negative integers")
        if offset + length > len(payload):
            raise ProtocolError("frame shorter than its declared blobs")
        blobs.append(payload[offset : offset + length])
        offset += length
    if offset != len(payload):
        raise ProtocolError("frame has trailing bytes beyond declared blobs")
    return header, blobs


# -- asyncio framing ----------------------------------------------------------


async def write_message(
    writer: asyncio.StreamWriter, header: dict, blobs: Sequence[bytes] = ()
) -> int:
    """Frame and send one message; returns the bytes written."""
    payload = encode_message(header, blobs)
    writer.write(_LENGTH.pack(len(payload)) + payload)
    await writer.drain()
    return _LENGTH.size + len(payload)


async def read_message(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> tuple[dict, list[bytes], int]:
    """Read one framed message; returns ``(header, blobs, bytes_read)``.

    Raises :class:`asyncio.IncompleteReadError` when the peer closes
    mid-frame (the caller treats that as a dropped connection, never as
    a partially applied message) and :class:`ProtocolError` on malformed
    or oversized frames.
    """
    prefix = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(prefix)
    if length > max_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    payload = await reader.readexactly(length)
    header, blobs = decode_message(payload)
    return header, blobs, _LENGTH.size + length


# -- message constructors -----------------------------------------------------


#: Valid values for the hello ``role`` field.  ``"site"`` is a leaf
#: observer; ``"uplink"`` is a child *coordinator* re-exporting its
#: aggregated deltas up a federation tree.  The fold path is identical
#: either way (deltas are deltas); the role only feeds transport stats
#: and diagnostics, so version 1 peers that omit it stay compatible.
ROLES = ("site", "uplink")


def hello_message(
    site_id: str, incarnation: str, role: str = "site"
) -> dict:
    if role not in ROLES:
        raise ValueError(f"role must be one of {ROLES}, got {role!r}")
    return {
        "type": "hello",
        "site_id": site_id,
        "incarnation": incarnation,
        "role": role,
        "version": PROTOCOL_VERSION,
    }


def welcome_message(sequence: int, durable: int) -> dict:
    return {"type": "welcome", "sequence": sequence, "durable": durable}


def delta_message(export: DeltaExport) -> tuple[dict, list[bytes]]:
    """Header and blobs for one delta export (blobs in ``streams`` order)."""
    streams = sorted(export.payloads)
    header = {
        "type": "delta",
        "site_id": export.site_id,
        "incarnation": export.incarnation,
        "sequence": export.sequence,
        "streams": streams,
    }
    return header, [export.payloads[name] for name in streams]


def ack_message(sequence: int, durable: int) -> dict:
    return {"type": "ack", "sequence": sequence, "durable": durable}


def error_message(message: str) -> dict:
    return {"type": "error", "message": message}


def export_from_message(header: dict, blobs: Sequence[bytes]) -> DeltaExport:
    """Rebuild a :class:`DeltaExport` from a decoded ``delta`` message."""
    if header.get("type") != "delta":
        raise ProtocolError(f"expected a delta message, got {header.get('type')!r}")
    streams = header.get("streams")
    site_id = header.get("site_id")
    sequence = header.get("sequence")
    incarnation = header.get("incarnation")
    if not isinstance(site_id, str) or not isinstance(sequence, int):
        raise ProtocolError("delta message needs a site_id and an int sequence")
    if not isinstance(incarnation, str) or not incarnation:
        raise ProtocolError("delta message needs a non-empty incarnation")
    if sequence < 1:
        raise ProtocolError("delta sequence numbers start at 1")
    if not isinstance(streams, list) or len(streams) != len(blobs):
        raise ProtocolError("delta stream names must align with payload blobs")
    if len(set(streams)) != len(streams):
        raise ProtocolError("delta stream names must be unique")
    return DeltaExport(
        site_id=site_id,
        sequence=sequence,
        payloads=dict(zip(streams, blobs)),
        incarnation=incarnation,
    )
