"""Unit tests for the distinct-sampling baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.distinct_sampling import DistinctSampler
from repro.errors import IllegalDeletionError


class TestInsertOnlyBehaviour:
    def test_small_stream_kept_exactly(self):
        sampler = DistinctSampler(capacity=64, seed=1)
        sampler.insert_batch(np.arange(50, dtype=np.uint64))
        assert sampler.level == 0
        assert sampler.estimate_distinct() == 50.0

    def test_duplicates_ignored(self):
        sampler = DistinctSampler(capacity=8, seed=2)
        for _ in range(10):
            sampler.insert(7)
        assert sampler.estimate_distinct() == 1.0

    @pytest.mark.parametrize("true_count", [2000, 20_000])
    def test_large_stream_estimate(self, true_count: int):
        rng = np.random.default_rng(true_count)
        elements = rng.choice(2**30, size=true_count, replace=False)
        sampler = DistinctSampler(capacity=512, seed=3)
        sampler.insert_batch(elements)
        estimate = sampler.estimate_distinct()
        assert abs(estimate - true_count) / true_count < 0.3

    def test_capacity_respected(self):
        rng = np.random.default_rng(111)
        elements = rng.choice(2**30, size=5000, replace=False)
        sampler = DistinctSampler(capacity=100, seed=4)
        sampler.insert_batch(elements)
        assert len(sampler.sample) <= 100
        assert sampler.level > 0

    def test_sample_contains_only_stream_elements(self):
        rng = np.random.default_rng(112)
        elements = set(int(e) for e in rng.choice(2**30, size=2000, replace=False))
        sampler = DistinctSampler(capacity=64, seed=5)
        sampler.insert_batch(np.asarray(sorted(elements), dtype=np.uint64))
        assert sampler.sample <= elements

    def test_validation(self):
        with pytest.raises(ValueError):
            DistinctSampler(capacity=0)


class TestDeletions:
    def test_unsampled_deletion_invisible(self):
        rng = np.random.default_rng(113)
        elements = rng.choice(2**30, size=3000, replace=False)
        sampler = DistinctSampler(capacity=32, seed=6)
        sampler.insert_batch(elements)
        unsampled = next(int(e) for e in elements if int(e) not in sampler.sample)
        before = sampler.estimate_distinct()
        sampler.delete(unsampled)
        assert sampler.estimate_distinct() == before
        assert sampler.depletions == 0

    def test_sampled_deletion_shrinks_sample(self):
        rng = np.random.default_rng(114)
        elements = rng.choice(2**30, size=3000, replace=False)
        sampler = DistinctSampler(capacity=32, seed=7)
        sampler.insert_batch(elements)
        victim = next(iter(sampler.sample))
        size_before = len(sampler.sample)
        sampler.delete(victim)
        assert len(sampler.sample) == size_before - 1
        assert sampler.depletions == 1

    def test_full_depletion_raises(self):
        """Deleting every sampled element at a raised threshold level
        leaves the sampler unable to answer — the rescan requirement the
        paper criticises."""
        rng = np.random.default_rng(115)
        elements = rng.choice(2**30, size=3000, replace=False)
        sampler = DistinctSampler(capacity=16, seed=8)
        sampler.insert_batch(elements)
        assert sampler.level > 0
        victims = list(sampler.sample)
        with pytest.raises(IllegalDeletionError):
            for victim in victims:
                sampler.delete(victim)
        assert not sampler.sample

    def test_level_zero_depletion_is_legal(self):
        """At level 0 the sample IS the distinct set, so deleting everything
        is just an empty stream — no rescan needed, no error."""
        sampler = DistinctSampler(capacity=64, seed=9)
        sampler.insert_batch(np.arange(10, dtype=np.uint64))
        for element in range(10):
            sampler.delete(element)
        assert sampler.estimate_distinct() == 0.0
