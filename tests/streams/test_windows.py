"""Unit tests for sliding-window deletion drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.engine import StreamEngine
from repro.streams.exact import ExactStreamStore
from repro.streams.updates import Update
from repro.streams.windows import SlidingWindowDriver

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=6)
SPEC = SketchSpec(num_sketches=64, shape=SHAPE, seed=21)


class TestWindowMechanics:
    def test_updates_forwarded(self):
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store)
        driver.observe(Update("A", 1, 1), at=0.0)
        assert store.distinct_set("A") == {1}

    def test_expiry_deletes(self):
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store)
        driver.observe(Update("A", 1, 1), at=0.0)
        driver.observe(Update("A", 2, 1), at=5.0)
        expired = driver.advance_to(10.0)
        assert expired == 1
        assert store.distinct_set("A") == {2}
        assert driver.in_window_count == 1

    def test_exclusive_expiry_bound(self):
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store)
        driver.observe(Update("A", 1, 1), at=0.0)
        assert driver.advance_to(9.999) == 0
        assert driver.advance_to(10.0) == 1

    def test_time_must_not_go_backwards(self):
        driver = SlidingWindowDriver(10.0, ExactStreamStore())
        driver.observe(Update("A", 1, 1), at=5.0)
        with pytest.raises(ValueError):
            driver.observe(Update("A", 2, 1), at=4.0)
        with pytest.raises(ValueError):
            driver.advance_to(1.0)

    def test_multiple_sinks(self):
        store = ExactStreamStore()
        engine = StreamEngine(SPEC)
        driver = SlidingWindowDriver(10.0, engine, store)
        driver.observe(Update("A", 1, 1), at=0.0)
        driver.advance_to(20.0)
        engine.flush()
        assert store.distinct_count("A") == 0
        assert engine.family("A").is_empty()

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowDriver(0.0, ExactStreamStore())
        with pytest.raises(ValueError):
            SlidingWindowDriver(1.0)
        with pytest.raises(TypeError):
            SlidingWindowDriver(1.0, object())


class TestWindowedSketchSemantics:
    def test_windowed_sketch_equals_in_window_build(self):
        """After expiry, the engine's sketch must be identical to a fresh
        sketch over only the in-window elements — the whole point of
        deletion-invariance."""
        rng = np.random.default_rng(800)
        elements = rng.choice(2**20, size=600, replace=False)
        engine = StreamEngine(SPEC)
        driver = SlidingWindowDriver(100.0, engine)
        for tick, element in enumerate(elements):
            driver.observe(Update("A", int(element), 1), at=float(tick))
        # Clock is now 599; window [500, 599] keeps the last 100 ticks.
        driver.advance_to(599.0)
        engine.flush()

        fresh = SPEC.build()
        fresh.update_batch(elements[-100:])
        assert engine.family("A") == fresh

    def test_windowed_cardinality_query(self):
        rng = np.random.default_rng(801)
        elements = rng.choice(2**20, size=2000, replace=False)
        engine = StreamEngine(
            SketchSpec(num_sketches=128, shape=SHAPE, seed=3)
        )
        exact = ExactStreamStore()
        driver = SlidingWindowDriver(500.0, engine, exact)
        for tick, element in enumerate(elements):
            driver.observe(Update("A", int(element), 1), at=float(tick))
        estimate = engine.query_union(["A"], 0.2)
        truth = exact.distinct_count("A")
        assert truth == 500
        assert abs(estimate.value - truth) / truth < 0.4


class TestClockPolicy:
    """The non-monotonic timestamp policy: ``"raise"`` (default) rejects
    regressions, ``"clamp"`` folds them onto the watermark, and NaN is
    rejected unconditionally under both."""

    def test_raise_is_the_default(self):
        driver = SlidingWindowDriver(10.0, ExactStreamStore())
        assert driver.clock_policy == "raise"

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindowDriver(10.0, ExactStreamStore(), clock_policy="ignore")

    @pytest.mark.parametrize("policy", ["raise", "clamp"])
    def test_nan_always_rejected(self, policy):
        """NaN slips past every ordering check (``NaN < clock`` is
        False) and would freeze expiry forever, so even the lenient
        policy refuses it — and the driver state stays untouched."""
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store, clock_policy=policy)
        driver.observe(Update("A", 1, 1), at=5.0)
        with pytest.raises(ValueError):
            driver.observe(Update("A", 2, 1), at=float("nan"))
        with pytest.raises(ValueError):
            driver.advance_to(float("nan"))
        assert driver.clock == 5.0
        assert driver.in_window_count == 1
        assert store.distinct_count("A") == 1

    def test_clamp_stamps_regressions_at_watermark(self):
        """A late update under ``"clamp"`` enters the window as if it
        arrived exactly at the watermark: it is forwarded, and it
        expires with the watermark's cohort, not before."""
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store, clock_policy="clamp")
        driver.observe(Update("A", 1, 1), at=5.0)
        driver.observe(Update("A", 2, 1), at=3.0)  # late: stamped at 5.0
        assert driver.clock == 5.0
        assert store.distinct_count("A") == 2
        # expiry at 13.0 would have dropped a 3.0-stamped update
        # (3.0 + 10 <= 13) but not a clamped one (5.0 + 10 > 13)
        assert driver.advance_to(13.0) == 0
        assert store.distinct_count("A") == 2
        assert driver.advance_to(15.0) == 2  # both cohorts expire together
        assert store.distinct_count("A") == 0

    def test_clamp_backwards_advance_is_noop(self):
        driver = SlidingWindowDriver(10.0, ExactStreamStore(), clock_policy="clamp")
        driver.observe(Update("A", 1, 1), at=8.0)
        assert driver.advance_to(2.0) == 0
        assert driver.clock == 8.0
        assert driver.in_window_count == 1

    def test_raise_leaves_state_intact_after_rejection(self):
        """A rejected regression must not half-apply: clock, window
        contents, and sink state all stay as they were."""
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store, clock_policy="raise")
        driver.observe(Update("A", 1, 1), at=5.0)
        with pytest.raises(ValueError):
            driver.observe(Update("A", 2, 1), at=4.0)
        assert driver.clock == 5.0
        assert driver.in_window_count == 1
        assert store.distinct_count("A") == 1
        driver.observe(Update("A", 2, 1), at=5.0)  # equal time is fine
        assert store.distinct_count("A") == 2
