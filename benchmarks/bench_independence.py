"""Ablation: first-level hash independence ``t`` (Section 3.6).

The paper proves Θ(log 1/ε)-wise independent first-level hashing suffices.
This bench sweeps the polynomial degree of the first-level family — from
pairwise (t = 2) through t = 16 — on a fixed intersection task, showing
that accuracy saturates at modest t exactly as the limited-independence
analysis predicts.
"""

from __future__ import annotations

from _common import build_families, intersection_dataset

from repro.core.intersection import estimate_intersection
from repro.experiments.metrics import relative_error, trimmed_mean_error

INDEPENDENCE_LEVELS = (2, 4, 8, 16)
NUM_SKETCHES = 192
TRIALS = 10


def run_independence_sweep():
    rows = []
    for t in INDEPENDENCE_LEVELS:
        errors = []
        for trial in range(TRIALS):
            dataset = intersection_dataset(seed=800 + trial, ratio=0.25)
            families = build_families(
                dataset, NUM_SKETCHES, independence=t, seed=trial
            )
            truth = dataset.target_size
            estimate = estimate_intersection(families["A"], families["B"], 0.1)
            errors.append(relative_error(estimate.value, truth))
        rows.append((t, trimmed_mean_error(errors)))
    return rows


def test_first_level_independence(benchmark):
    rows = benchmark.pedantic(run_independence_sweep, rounds=1, iterations=1)
    print()
    print("First-level independence ablation, |A ∩ B| at r=192 sketches")
    print(f"{'t':>4s} {'trimmed error':>14s}")
    for t, error in rows:
        print(f"{t:4d} {100 * error:13.1f}%")
    print("paper: t = Θ(log 1/ε)-wise independence suffices (Section 3.6)")

    by_t = dict(rows)
    # Accuracy at t=8 should already match t=16 (within noise).
    assert by_t[8] < 0.5
    assert abs(by_t[16] - by_t[8]) < 0.25
