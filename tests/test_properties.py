"""Property-based tests (hypothesis) on the library's core invariants.

These pin down the algebraic properties everything else rests on:
linearity of the sketch, deletion invariance, scalar/batch maintenance
parity, parser round-trips, Venn algebra vs brute-force set semantics, and
exact-store bookkeeping.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.family import SketchSpec
from repro.core.sketch import SketchHashes, SketchShape, TwoLevelHashSketch
from repro.expr.ast import (
    DifferenceExpr,
    IntersectionExpr,
    SetExpression,
    StreamRef,
    UnionExpr,
)
from repro.expr.parser import parse
from repro.expr.venn import all_cells, expression_size_from_cells
from repro.streams.exact import ExactStreamStore
from repro.streams.updates import Update

DOMAIN_BITS = 16
SHAPE = SketchShape(domain_bits=DOMAIN_BITS, num_second_level=4, independence=2)
HASHES = SketchHashes.draw(np.random.default_rng(0), SHAPE)

elements_strategy = st.lists(
    st.integers(min_value=0, max_value=2**DOMAIN_BITS - 1), max_size=60
)
counts_strategy = st.integers(min_value=1, max_value=5)


def sketch_of(frequency_vector: Counter) -> TwoLevelHashSketch:
    sketch = TwoLevelHashSketch(HASHES, SHAPE)
    for element, count in frequency_vector.items():
        if count:
            sketch.update(element, count)
    return sketch


class TestSketchAlgebra:
    @settings(max_examples=30, deadline=None)
    @given(elements_strategy, elements_strategy)
    def test_linearity(self, first: list[int], second: list[int]):
        """sketch(A) + sketch(B) == sketch(A ⊎ B) for any multisets."""
        combined = sketch_of(Counter(first) + Counter(second))
        merged = sketch_of(Counter(first)).merged_with(sketch_of(Counter(second)))
        assert merged == combined

    @settings(max_examples=30, deadline=None)
    @given(elements_strategy, elements_strategy)
    def test_deletion_invariance(self, keep: list[int], churn: list[int]):
        """Inserting then deleting any multiset leaves no trace."""
        churned = sketch_of(Counter(keep))
        for element in churn:
            churned.update(element, +2)
        for element in churn:
            churned.update(element, -2)
        assert churned == sketch_of(Counter(keep))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**DOMAIN_BITS - 1),
                st.integers(min_value=-4, max_value=4).filter(lambda d: d != 0),
            ),
            max_size=50,
        )
    )
    def test_update_order_irrelevant(self, updates: list[tuple[int, int]]):
        """The sketch is a function of net frequencies, not arrival order."""
        forward = TwoLevelHashSketch(HASHES, SHAPE)
        backward = TwoLevelHashSketch(HASHES, SHAPE)
        for element, delta in updates:
            forward.update(element, delta)
        for element, delta in reversed(updates):
            backward.update(element, delta)
        assert forward == backward

    @settings(max_examples=25, deadline=None)
    @given(elements_strategy, st.lists(counts_strategy, max_size=60))
    def test_batch_matches_scalar(self, elements: list[int], counts: list[int]):
        length = min(len(elements), len(counts))
        elements, counts = elements[:length], counts[:length]
        batched = TwoLevelHashSketch(HASHES, SHAPE)
        batched.update_batch(
            np.asarray(elements, dtype=np.uint64), np.asarray(counts)
        )
        scalar = TwoLevelHashSketch(HASHES, SHAPE)
        for element, count in zip(elements, counts):
            scalar.update(element, count)
        assert batched == scalar

    @settings(max_examples=20, deadline=None)
    @given(elements_strategy)
    def test_serialisation_roundtrip(self, elements: list[int]):
        original = sketch_of(Counter(elements))
        restored = TwoLevelHashSketch.from_bytes(
            original.to_bytes(), HASHES, SHAPE
        )
        assert restored == original


# -- expression strategies ----------------------------------------------------

names = st.sampled_from(["A", "B", "C"])


def expression_strategy() -> st.SearchStrategy[SetExpression]:
    leaves = names.map(StreamRef)

    def extend(children):
        return st.one_of(
            st.builds(UnionExpr, children, children),
            st.builds(IntersectionExpr, children, children),
            st.builds(DifferenceExpr, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=6)


class TestExpressionProperties:
    @settings(max_examples=60, deadline=None)
    @given(expression_strategy())
    def test_parse_roundtrip(self, expression: SetExpression):
        assert parse(expression.to_text()) == expression

    @settings(max_examples=60, deadline=None)
    @given(
        expression_strategy(),
        st.dictionaries(names, st.sets(st.integers(0, 30)), min_size=3, max_size=3),
    )
    def test_contains_matches_evaluate(self, expression, sets):
        universe = set().union(*sets.values()) if sets else set()
        evaluated = expression.evaluate(sets)
        for element in universe:
            membership = {name: element in sets[name] for name in sets}
            assert expression.contains(membership) == (element in evaluated)

    @settings(max_examples=60, deadline=None)
    @given(
        expression_strategy(),
        st.lists(st.integers(0, 40), min_size=7, max_size=7),
    )
    def test_venn_size_matches_brute_force(self, expression, sizes):
        stream_names = sorted(expression.streams())
        cells = all_cells(["A", "B", "C"])
        cell_sizes = dict(zip(cells, sizes))
        # Materialise disjoint sets per cell and evaluate exactly.
        sets: dict[str, set] = {"A": set(), "B": set(), "C": set()}
        next_element = 0
        for cell, size in cell_sizes.items():
            members = set(range(next_element, next_element + size))
            next_element += size
            for name in cell:
                sets[name] |= members
        expected = len(expression.evaluate({name: sets[name] for name in stream_names}))
        assert expression_size_from_cells(expression, cell_sizes) == expected

    @settings(max_examples=40, deadline=None)
    @given(
        expression_strategy(),
        st.dictionaries(
            names,
            st.lists(st.booleans(), min_size=5, max_size=5),
            min_size=3,
            max_size=3,
        ),
    )
    def test_boolean_mask_matches_contains(self, expression, mask_lists):
        masks = {name: np.asarray(bits) for name, bits in mask_lists.items()}
        result = expression.boolean_mask(masks)
        for position in range(5):
            membership = {name: bool(masks[name][position]) for name in masks}
            assert bool(result[position]) == expression.contains(membership)


class TestOptimizerProperties:
    @settings(max_examples=50, deadline=None)
    @given(expression_strategy())
    def test_simplify_preserves_semantics(self, expression: SetExpression):
        from repro.expr.optimize import equivalent, simplify

        assert equivalent(expression, simplify(expression))

    @settings(max_examples=50, deadline=None)
    @given(expression_strategy())
    def test_simplify_idempotent(self, expression: SetExpression):
        from repro.expr.optimize import simplify

        once = simplify(expression)
        assert simplify(once) == once

    @settings(max_examples=50, deadline=None)
    @given(
        expression_strategy(),
        st.dictionaries(names, st.sets(st.integers(0, 25)), min_size=3, max_size=3),
    )
    def test_simplified_evaluates_identically(self, expression, sets):
        from repro.expr.optimize import simplify

        simplified = simplify(expression)
        full_sets = {name: sets.get(name, set()) for name in ("A", "B", "C")}
        assert expression.evaluate(full_sets) == simplified.evaluate(full_sets)

    @settings(max_examples=50, deadline=None)
    @given(expression_strategy(), expression_strategy())
    def test_equivalence_agrees_with_evaluation(self, first, second):
        from repro.expr.optimize import equivalent

        sets = {"A": {1, 2, 5}, "B": {2, 3, 5}, "C": {3, 4, 5, 6}}
        if equivalent(first, second):
            assert first.evaluate(sets) == second.evaluate(sets)


class TestExactStoreProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["A", "B"]),
                st.integers(0, 20),
                st.integers(1, 3),
            ),
            max_size=40,
        )
    )
    def test_store_matches_counter_semantics(self, inserts):
        store = ExactStreamStore()
        reference: dict[str, Counter] = {"A": Counter(), "B": Counter()}
        for stream, element, count in inserts:
            store.apply(Update(stream, element, count))
            reference[stream][element] += count
        for stream in ("A", "B"):
            assert store.distinct_set(stream) == set(reference[stream])
            assert store.total_items(stream) == sum(reference[stream].values())

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=30))
    def test_insert_then_delete_everything(self, elements):
        store = ExactStreamStore()
        for element in elements:
            store.apply(Update("A", element, 1))
        for element in elements:
            store.apply(Update("A", element, -1))
        assert store.distinct_count("A") == 0


class TestFamilyProperties:
    @settings(max_examples=15, deadline=None)
    @given(elements_strategy, st.integers(min_value=1, max_value=8))
    def test_prefix_consistency(self, elements, prefix_size):
        spec = SketchSpec(num_sketches=8, shape=SHAPE, seed=3)
        family = spec.build()
        family.update_batch(np.asarray(elements, dtype=np.uint64))
        small_spec = SketchSpec(num_sketches=prefix_size, shape=SHAPE, seed=3)
        small = small_spec.build()
        small.update_batch(np.asarray(elements, dtype=np.uint64))
        assert family.prefix(prefix_size) == small


class TestFieldAlgebraProperties:
    """GF(2^61-1) arithmetic obeys field laws (hypothesis-driven)."""

    P = (1 << 61) - 1
    residues = st.integers(min_value=0, max_value=P - 1)

    @settings(max_examples=200, deadline=None)
    @given(residues, residues, residues)
    def test_mul_associative(self, a, b, c):
        from repro.hashing.mersenne import mulmod

        left = mulmod(mulmod(np.uint64(a), np.uint64(b)), np.uint64(c))
        right = mulmod(np.uint64(a), mulmod(np.uint64(b), np.uint64(c)))
        assert int(left) == int(right)

    @settings(max_examples=200, deadline=None)
    @given(residues, residues, residues)
    def test_distributive(self, a, b, c):
        from repro.hashing.mersenne import addmod, mulmod

        left = mulmod(np.uint64(a), addmod(np.uint64(b), np.uint64(c)))
        right = addmod(
            mulmod(np.uint64(a), np.uint64(b)), mulmod(np.uint64(a), np.uint64(c))
        )
        assert int(left) == int(right)

    @settings(max_examples=200, deadline=None)
    @given(residues, residues)
    def test_matches_python_ints(self, a, b):
        from repro.hashing.mersenne import mulmod

        assert int(mulmod(np.uint64(a), np.uint64(b))) == (a * b) % self.P

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_mod_p_canonical(self, x):
        from repro.hashing.mersenne import mod_p

        reduced = int(mod_p(np.uint64(x)))
        assert reduced == x % self.P
        assert reduced < self.P
