"""Unit tests for update-log files."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.exact import ExactStreamStore
from repro.streams.sources import (
    UpdateLogError,
    load_updates,
    replay_into,
    save_updates,
)
from repro.streams.updates import Update, deletions, insertions


def sample_updates() -> list[Update]:
    return (
        insertions("A", [1, 2, 3])
        + deletions("A", [2])
        + insertions("B", [100], count=5)
    )


class TestRoundTrip:
    def test_plain_file(self, tmp_path):
        path = tmp_path / "updates.log"
        written = save_updates(path, sample_updates())
        assert written == 5
        assert list(load_updates(path)) == sample_updates()

    def test_gzip_file(self, tmp_path):
        path = tmp_path / "updates.log.gz"
        save_updates(path, sample_updates())
        assert list(load_updates(path)) == sample_updates()
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # really gzip

    def test_empty_log(self, tmp_path):
        path = tmp_path / "empty.log"
        assert save_updates(path, []) == 0
        assert list(load_updates(path)) == []

    def test_large_roundtrip(self, tmp_path):
        rng = np.random.default_rng(400)
        updates = [
            Update("S", int(element), int(delta))
            for element, delta in zip(
                rng.integers(0, 2**30, size=2000),
                rng.choice([-2, -1, 1, 2, 3], size=2000),
            )
        ]
        path = tmp_path / "big.log.gz"
        save_updates(path, updates)
        assert list(load_updates(path)) == updates


class TestParsing:
    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "log"
        path.write_text("# header\n\nA 5 +1\n   \n# trailing\n")
        assert list(load_updates(path)) == [Update("A", 5, 1)]

    def test_unsigned_delta_accepted(self, tmp_path):
        path = tmp_path / "log"
        path.write_text("A 5 3\n")
        assert list(load_updates(path)) == [Update("A", 5, 3)]

    def test_wrong_field_count_rejected(self, tmp_path):
        path = tmp_path / "log"
        path.write_text("A 5\n")
        with pytest.raises(UpdateLogError, match=":1:"):
            list(load_updates(path))

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "log"
        path.write_text("A five +1\n")
        with pytest.raises(UpdateLogError):
            list(load_updates(path))

    def test_zero_delta_rejected(self, tmp_path):
        path = tmp_path / "log"
        path.write_text("A 5 0\n")
        with pytest.raises(UpdateLogError):
            list(load_updates(path))

    def test_error_reports_line_number(self, tmp_path):
        path = tmp_path / "log"
        path.write_text("A 1 +1\nB 2 +1\nbroken line here extra\n")
        with pytest.raises(UpdateLogError, match=":3:"):
            list(load_updates(path))


class TestCsvLoading:
    def _write_csv(self, tmp_path, text, name="updates.csv"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_basic_csv(self, tmp_path):
        path = self._write_csv(
            tmp_path, "stream,element,delta\nA,1,1\nB,2,-1\n"
        )
        from repro.streams.sources import load_updates_csv

        assert list(load_updates_csv(path)) == [Update("A", 1, 1), Update("B", 2, -1)]

    def test_missing_delta_column_defaults_to_insertion(self, tmp_path):
        path = self._write_csv(tmp_path, "stream,element\nA,5\nA,6\n")
        from repro.streams.sources import load_updates_csv

        updates = list(load_updates_csv(path))
        assert all(update.delta == 1 for update in updates)

    def test_custom_column_names(self, tmp_path):
        path = self._write_csv(
            tmp_path, "router,src_ip,count\nR1,100,2\n"
        )
        from repro.streams.sources import load_updates_csv

        updates = list(
            load_updates_csv(
                path,
                stream_column="router",
                element_column="src_ip",
                delta_column="count",
            )
        )
        assert updates == [Update("R1", 100, 2)]

    def test_missing_required_column(self, tmp_path):
        path = self._write_csv(tmp_path, "foo,bar\n1,2\n")
        from repro.streams.sources import load_updates_csv

        with pytest.raises(UpdateLogError, match="stream"):
            list(load_updates_csv(path))

    def test_bad_value_reports_row(self, tmp_path):
        path = self._write_csv(tmp_path, "stream,element\nA,5\nA,oops\n")
        from repro.streams.sources import load_updates_csv

        with pytest.raises(UpdateLogError, match=":3:"):
            list(load_updates_csv(path))

    def test_empty_file(self, tmp_path):
        path = self._write_csv(tmp_path, "")
        from repro.streams.sources import load_updates_csv

        with pytest.raises(UpdateLogError, match="header"):
            list(load_updates_csv(path))

    def test_gzipped_csv(self, tmp_path):
        import gzip

        path = tmp_path / "updates.csv.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("stream,element\nA,7\n")
        from repro.streams.sources import load_updates_csv

        assert list(load_updates_csv(path)) == [Update("A", 7, 1)]

    def test_replay_routes_csv_by_suffix(self, tmp_path):
        path = self._write_csv(tmp_path, "stream,element\nA,1\nA,2\n")
        store = ExactStreamStore()
        assert replay_into(path, store) == 2
        assert store.distinct_set("A") == {1, 2}


class TestReplay:
    def test_replay_into_exact_store(self, tmp_path):
        path = tmp_path / "log"
        save_updates(path, sample_updates())
        store = ExactStreamStore()
        count = replay_into(path, store)
        assert count == 5
        assert store.distinct_set("A") == {1, 3}
        assert store.frequency("B", 100) == 5

    def test_replay_into_multiple_sinks(self, tmp_path):
        from repro.core.family import SketchSpec
        from repro.core.sketch import SketchShape
        from repro.streams.engine import StreamEngine

        path = tmp_path / "log"
        save_updates(path, sample_updates())
        spec = SketchSpec(
            num_sketches=8,
            shape=SketchShape(domain_bits=20, num_second_level=4, independence=4),
            seed=0,
        )
        engine = StreamEngine(spec)
        store = ExactStreamStore()
        replay_into(path, engine, store)
        assert engine.updates_processed == 5
        assert store.streams() == ["A", "B"]

    def test_replay_rejects_bad_sink(self, tmp_path):
        path = tmp_path / "log"
        save_updates(path, sample_updates())
        with pytest.raises(TypeError):
            replay_into(path, object())

    def test_progress_callback(self, tmp_path):
        path = tmp_path / "log"
        save_updates(path, insertions("A", range(25)))
        ticks = []
        replay_into(
            path, ExactStreamStore(), progress=ticks.append, progress_every=10
        )
        assert ticks == [10, 20]
