"""Reference points read off the paper's published figures.

The paper shows plots, not tables, so exact values are not recoverable;
these coarse anchor points come from the prose of Section 5.2 and the
visible shape of Figures 7(a), 7(b), and 8.  They are used by
``EXPERIMENTS.md`` and by the benchmark output to label how the measured
series compare with the published ones.

All values are *relative errors* (fractions, not percent).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PaperAnchor", "PAPER_ANCHORS", "anchors_for"]


@dataclass(frozen=True)
class PaperAnchor:
    """One claim the paper's text makes about a figure."""

    figure: str
    claim: str
    sketch_count: int
    max_error: float


PAPER_ANCHORS: tuple[PaperAnchor, ...] = (
    PaperAnchor(
        figure="fig7a",
        claim="with 128-256 sketches the intersection error is close to or "
        "below 20% across the tested target sizes",
        sketch_count=256,
        max_error=0.25,
    ),
    PaperAnchor(
        figure="fig7a",
        claim="at 512 sketches the intersection error drops to <= 10%",
        sketch_count=512,
        max_error=0.15,
    ),
    PaperAnchor(
        figure="fig7b",
        claim="small difference sizes (|A-B| = u/32) start around 48% error "
        "at few sketches",
        sketch_count=32,
        max_error=1.00,
    ),
    PaperAnchor(
        figure="fig7b",
        claim="at 512 sketches all difference errors are around 10% or lower",
        sketch_count=512,
        max_error=0.15,
    ),
    PaperAnchor(
        figure="fig8",
        claim="expression errors tail off to 20% or lower at 512 sketches",
        sketch_count=512,
        max_error=0.25,
    ),
)


def anchors_for(figure: str) -> tuple[PaperAnchor, ...]:
    """The published claims touching one figure."""
    return tuple(anchor for anchor in PAPER_ANCHORS if anchor.figure == figure)
