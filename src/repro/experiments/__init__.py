"""Experiment harness: configurations, sweep runner, and metrics."""

from repro.experiments.compare import AnchorVerdict, check_anchors, to_csv
from repro.experiments.config import FIGURES, ExperimentConfig, scaled_config
from repro.experiments.metrics import (
    TRIM_FRACTION,
    relative_error,
    trimmed_mean_error,
)
from repro.experiments.report import load_sweep_csv, render_report
from repro.experiments.reference import PAPER_ANCHORS, PaperAnchor, anchors_for
from repro.experiments.runner import SweepResult, SweepSeries, run_sweep

__all__ = [
    "AnchorVerdict",
    "check_anchors",
    "to_csv",
    "FIGURES",
    "ExperimentConfig",
    "scaled_config",
    "TRIM_FRACTION",
    "relative_error",
    "trimmed_mean_error",
    "PAPER_ANCHORS",
    "PaperAnchor",
    "anchors_for",
    "SweepResult",
    "SweepSeries",
    "run_sweep",
    "load_sweep_csv",
    "render_report",
]
