"""The serving front end: protocol frames, session behaviour, and the
federated e2e acceptance scenario.

Three layers, strictest first:

* pure message-level tests — QUERY/QUERY_RESULT/QUERY_ERROR round-trip
  through the length-framed codec, and strict decoding rejects every
  malformed shape before the server ever sees it;
* session tests against a live :class:`QueryServer` — role policing on
  both ports, typed error frames that keep the connection open, and the
  unknown-tenant/unknown-stream payloads carrying the known names;
* the acceptance e2e: ≥ 8 concurrent clients querying the root of a
  2-level federated tree through :class:`FaultyTransport` while sites
  keep shipping — every drained answer bit-identical to a flat
  :class:`StreamEngine` fed the same updates.
"""

from __future__ import annotations

import asyncio
import random
import struct

import pytest

from repro.core.family import SketchSpec
from repro.core.results import UnionEstimate, WitnessEstimate
from repro.core.sketch import SketchShape
from repro.errors import (
    EstimationError,
    ExpressionError,
    RateLimitedError,
    ReproError,
    UnknownQueryError,
    UnknownStreamError,
    UnknownTenantError,
)
from repro.streams.engine import StreamEngine
from repro.streams.net import protocol
from repro.streams.net.coordinator import CoordinatorServer
from repro.streams.net.site import SiteClient
from repro.streams.serving import (
    QueryClient,
    QueryServer,
    TenantSpec,
    estimate_from_dict,
    estimate_to_dict,
)
from repro.streams.updates import Update

from tests.streams.net.faults import FaultyTransport

SHAPE = SketchShape(domain_bits=14, num_second_level=8, independence=4)
SPEC = SketchSpec(num_sketches=16, shape=SHAPE, seed=41)

TIMEOUT = 60.0


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


def roundtrip(header: dict) -> dict:
    decoded, blobs = protocol.decode_message(protocol.encode_message(header))
    assert blobs == []
    return decoded


class TestQueryMessages:
    def test_expression_query_roundtrips(self):
        header = protocol.query_message(
            7, "acme", expressions=["A & B", "A - C"], epsilon=0.05,
            window=30.0,
        )
        request = protocol.query_from_message(roundtrip(header))
        assert request.id == 7
        assert request.tenant == "acme"
        assert request.kind == "expression"
        assert request.items == ("A & B", "A - C")
        assert request.epsilon == 0.05
        assert request.window == 30.0

    def test_union_query_roundtrips(self):
        header = protocol.query_message(0, "public", streams=["A", "B"])
        request = protocol.query_from_message(roundtrip(header))
        assert request.kind == "union"
        assert request.items == ("A", "B")
        assert request.window is None

    def test_query_message_wants_exactly_one_payload(self):
        with pytest.raises(ValueError, match="exactly one"):
            protocol.query_message(1, "t")
        with pytest.raises(ValueError, match="exactly one"):
            protocol.query_message(
                1, "t", expressions=["A"], streams=["A"]
            )

    def test_result_roundtrips_bit_identically(self):
        estimates = [
            WitnessEstimate(
                value=1234.5678901234567,
                level=3,
                union_estimate=2345.678,
                num_valid=12,
                num_witnesses=7,
                num_sketches=16,
            ),
            UnionEstimate(
                value=9876.543,
                level=2,
                non_empty_fraction=0.109375,
                num_sketches=16,
                saturated=True,
            ),
        ]
        header = protocol.query_result_message(
            3, "expression",
            [estimate_to_dict(estimate) for estimate in estimates],
            (100, 4),
        )
        decoded = roundtrip(header)
        assert decoded["id"] == 3
        assert decoded["position"] == [100, 4]
        rebuilt = [estimate_from_dict(result) for result in decoded["results"]]
        # JSON floats round-trip exactly; the dataclasses compare ==.
        assert rebuilt == estimates

    def test_error_roundtrips_with_details(self):
        header = protocol.query_error_message(
            9, "unknown-stream", "no synopsis for 'Z'",
            details={"unknown": ["Z"], "known": ["A", "B"]},
        )
        decoded = roundtrip(header)
        assert decoded["error"] == "unknown-stream"
        assert decoded["unknown"] == ["Z"]
        assert decoded["known"] == ["A", "B"]

    def test_error_details_cannot_shadow_reserved_fields(self):
        with pytest.raises(ValueError, match="override"):
            protocol.query_error_message(
                1, "internal", "boom", details={"id": 99}
            )

    @pytest.mark.parametrize(
        "mutation",
        [
            {"type": "delta"},
            {"id": None},
            {"id": True},
            {"id": -1},
            {"id": "7"},
            {"tenant": None},
            {"tenant": ""},
            {"tenant": 3},
            {"expressions": None},  # neither payload
            {"streams": ["A"]},  # both payloads
            {"expressions": []},
            {"expressions": "A & B"},
            {"expressions": ["A", ""]},
            {"expressions": ["A", 7]},
            {"epsilon": None},
            {"epsilon": "0.1"},
            {"epsilon": True},
            {"epsilon": float("nan")},
            {"window": "30"},
            {"window": float("nan")},
            {"window": True},
        ],
    )
    def test_strict_decoding_rejects_malformed_queries(self, mutation):
        header = protocol.query_message(
            1, "public", expressions=["A & B"], epsilon=0.1
        )
        header.update(mutation)
        header = {k: v for k, v in header.items() if v is not None}
        with pytest.raises(protocol.ProtocolError):
            protocol.query_from_message(header)

    def test_strict_decoding_rejects_oversized_batches(self):
        header = protocol.query_message(
            1, "public",
            expressions=["A"] * (protocol.MAX_QUERY_ITEMS + 1),
        )
        with pytest.raises(protocol.ProtocolError, match="at most"):
            protocol.query_from_message(header)

    def test_estimate_payloads_decode_strictly(self):
        with pytest.raises(protocol.ProtocolError, match="unknown estimate"):
            estimate_from_dict({"est": "exact", "value": 1.0})
        with pytest.raises(protocol.ProtocolError, match="malformed"):
            estimate_from_dict({"est": "witness", "value": 1.0})
        with pytest.raises(protocol.ProtocolError, match="object"):
            estimate_from_dict([1.0])


# -- live sessions ------------------------------------------------------------


def small_engine() -> StreamEngine:
    engine = StreamEngine(SPEC)
    for element in range(300):
        engine.process(Update("t1_A", element, 1))
        engine.process(Update("t1_B", element % 150, 1))
        engine.process(Update("A", element, 1))
        engine.process(Update("B", element % 100, 1))
    engine.flush()
    return engine


async def raw_session(port: int, hello: dict):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    await protocol.write_message(writer, hello)
    header, _, _ = await protocol.read_message(reader)
    return reader, writer, header


def query_hello(client_id: str = "c0") -> dict:
    return protocol.hello_message(client_id, "0", role="query")


class TestQueryServerSessions:
    def test_handshake_and_query(self):
        async def scenario():
            engine = small_engine()
            async with QueryServer(engine) as server:
                reader, writer, welcome = await raw_session(
                    server.port, query_hello()
                )
                assert welcome["type"] == "welcome"
                await protocol.write_message(
                    writer,
                    protocol.query_message(
                        1, "public", expressions=["A & B"]
                    ),
                )
                header, _, _ = await protocol.read_message(reader)
                assert header["type"] == "query_result"
                assert header["id"] == 1
                assert header["kind"] == "expression"
                [result] = header["results"]
                assert estimate_from_dict(result) == engine.query("A & B")
                writer.close()

        run(scenario())

    def test_query_port_refuses_ingest_roles(self):
        async def scenario():
            async with QueryServer(small_engine()) as server:
                _, writer, answer = await raw_session(
                    server.port, protocol.hello_message("s1", "0", "site")
                )
                assert answer["type"] == "error"
                assert "query port" in answer["message"]
                writer.close()

        run(scenario())

    def test_ingest_port_points_query_clients_at_query_port(self):
        async def scenario():
            async with CoordinatorServer(SPEC, query_port=0) as coordinator:
                _, writer, answer = await raw_session(
                    coordinator.port, query_hello()
                )
                assert answer["type"] == "error"
                assert str(coordinator.query_port) in answer["message"]
                writer.close()

        run(scenario())

    def test_unsupported_version_is_refused(self):
        async def scenario():
            async with QueryServer(small_engine()) as server:
                hello = query_hello()
                hello["version"] = 99
                _, writer, answer = await raw_session(server.port, hello)
                assert answer["type"] == "error"
                assert "version" in answer["message"]
                writer.close()

        run(scenario())

    def test_malformed_query_answers_typed_and_keeps_session(self):
        async def scenario():
            engine = small_engine()
            async with QueryServer(engine) as server:
                reader, writer, _ = await raw_session(
                    server.port, query_hello()
                )
                # Malformed: both payloads.  The frame itself is
                # well-formed, so the session must survive.
                bad = protocol.query_message(
                    5, "public", expressions=["A"]
                )
                bad["streams"] = ["B"]
                await protocol.write_message(writer, bad)
                header, _, _ = await protocol.read_message(reader)
                assert header["type"] == "query_error"
                assert header["id"] == 5
                assert header["error"] == "protocol"
                # ... and an unparseable id comes back as -1.
                await protocol.write_message(
                    writer, {"type": "query", "id": "nope"}
                )
                header, _, _ = await protocol.read_message(reader)
                assert header["type"] == "query_error"
                assert header["id"] == -1
                # The connection still serves real queries.
                await protocol.write_message(
                    writer,
                    protocol.query_message(6, "public", expressions=["A"]),
                )
                header, _, _ = await protocol.read_message(reader)
                assert header["type"] == "query_result"
                assert header["id"] == 6
                writer.close()

        run(scenario())

    def test_oversized_frame_errors_and_closes(self):
        async def scenario():
            async with QueryServer(
                small_engine(), max_frame_bytes=4096
            ) as server:
                reader, writer, _ = await raw_session(
                    server.port, query_hello()
                )
                writer.write(struct.pack(">I", 1 << 20))
                await writer.drain()
                header, _, _ = await protocol.read_message(reader)
                assert header["type"] == "error"
                assert "exceeds" in header["message"]
                # The stream cannot be re-synchronised: server closes.
                assert await reader.read() == b""
                writer.close()

        run(scenario())

    def test_unknown_tenant_carries_known_names(self):
        async def scenario():
            tenants = [TenantSpec("acme"), TenantSpec("globex")]
            async with QueryServer(
                small_engine(), tenants=tenants
            ) as server:
                client = QueryClient(
                    "127.0.0.1", server.port, tenant="initech"
                )
                async with client:
                    with pytest.raises(UnknownTenantError) as info:
                        await client.query("A")
                    assert info.value.details == {
                        "unknown": ["initech"],
                        "known": ["acme", "globex"],
                    }
                    # The session survived the typed error.
                    client.tenant = "acme"
                    with pytest.raises(UnknownStreamError):
                        # acme sees every stream; "Z" exists nowhere.
                        await client.query("Z")

        run(scenario())

    def test_unknown_stream_carries_known_names_per_namespace(self):
        async def scenario():
            tenants = [TenantSpec("t1", prefix="t1_")]
            async with QueryServer(
                small_engine(), tenants=tenants
            ) as server:
                client = QueryClient("127.0.0.1", server.port, tenant="t1")
                async with client:
                    with pytest.raises(UnknownStreamError) as info:
                        await client.query("A & Z")
                    # Only the tenant's namespace is enumerated — the
                    # engine's unprefixed A/B must not leak.
                    assert info.value.details == {
                        "unknown": ["Z"],
                        "known": ["A", "B"],
                    }

        run(scenario())

    def test_bad_epsilon_and_window_map_to_bad_request(self):
        async def scenario():
            async with QueryServer(small_engine()) as server:
                client = QueryClient("127.0.0.1", server.port)
                async with client:
                    with pytest.raises(ValueError, match="epsilon"):
                        await client.query("A", epsilon=1.5)
                    with pytest.raises(ValueError, match="windowed"):
                        await client.query("A", window=10.0)
                    # Still serving afterwards.
                    assert isinstance(
                        await client.query("A"), WitnessEstimate
                    )

        run(scenario())

    def test_unparseable_expression_maps_to_expression_error(self):
        async def scenario():
            async with QueryServer(small_engine()) as server:
                client = QueryClient("127.0.0.1", server.port)
                async with client:
                    with pytest.raises(ExpressionError):
                        await client.query("A &&& B")

        run(scenario())


class _StubTarget:
    """A serving target whose query paths raise a chosen exception."""

    def __init__(self, exc: Exception):
        self.exc = exc

    def stream_names(self):
        return ["A", "B"]

    def query(self, *args, **kwargs):
        raise self.exc

    def query_union(self, *args, **kwargs):
        raise self.exc


class TestErrorMapping:
    """Every server-surfaced exception maps to a typed frame.

    The regression half of the ISSUE-10 error-path audit: none of these
    may drop the connection, and the client re-raises the same class.
    """

    @pytest.mark.parametrize(
        "exc,kind,expected_type",
        [
            (EstimationError("no valid observations"), "estimation",
             EstimationError),
            (UnknownQueryError("no standing query named 'x'"),
             "unknown-query", UnknownQueryError),
            (ValueError("window must divide the span"), "bad-request",
             ValueError),
            (RuntimeError("unexpected"), "internal", ReproError),
        ],
    )
    def test_evaluation_errors_map_and_keep_session(
        self, exc, kind, expected_type
    ):
        async def scenario():
            async with QueryServer(_StubTarget(exc)) as server:
                reader, writer, _ = await raw_session(
                    server.port, query_hello()
                )
                await protocol.write_message(
                    writer,
                    protocol.query_message(1, "public", expressions=["A"]),
                )
                header, _, _ = await protocol.read_message(reader)
                assert header["type"] == "query_error"
                assert header["error"] == kind
                # Session survives; a second request gets an answer too.
                await protocol.write_message(
                    writer,
                    protocol.query_message(2, "public", streams=["A"]),
                )
                header, _, _ = await protocol.read_message(reader)
                assert header["type"] == "query_error"
                assert header["id"] == 2
                writer.close()
                # The client-side mapping re-raises the same type.
                from repro.streams.serving import error_from_header

                rebuilt = error_from_header(
                    protocol.query_error_message(1, kind, "m")
                )
                assert isinstance(rebuilt, expected_type)

        run(scenario())

    def test_rate_limited_roundtrips_retry_after(self):
        from repro.streams.serving import error_from_header

        header = protocol.query_error_message(
            1, "rate-limited", "over budget",
            details={"retry_after": 1.25},
        )
        exc = error_from_header(roundtrip(header))
        assert isinstance(exc, RateLimitedError)
        assert exc.retry_after == 1.25

    def test_query_many_failure_falls_back_per_request(self):
        """A group-level batch failure must not fail the whole drain."""

        class FlakyBatchTarget(_StubTarget):
            def __init__(self):
                super().__init__(RuntimeError("unused"))
                self.engine = small_engine()

            def stream_names(self):
                return self.engine.stream_names()

            def query_many(self, *args, **kwargs):
                raise RuntimeError("batch path down")

            def query(self, expression, epsilon, window=None):
                return self.engine.query(expression, epsilon)

        async def scenario():
            target = FlakyBatchTarget()
            async with QueryServer(target) as server:
                client = QueryClient("127.0.0.1", server.port)
                async with client:
                    estimate = await client.query("A & B")
                    assert estimate == target.engine.query("A & B")

        run(scenario())


# -- the acceptance e2e -------------------------------------------------------


STREAMS = "ABC"


def make_site_client(site_id: str, port: int, seed: int) -> SiteClient:
    return SiteClient(
        site_id=site_id,
        spec=SPEC,
        port=port,
        connect_timeout=1.0,
        io_timeout=0.3,
        max_retries=80,
        backoff_base=0.005,
        backoff_cap=0.03,
        rng=random.Random(seed),
    )


def uplink_options(seed: int) -> dict:
    return dict(
        connect_timeout=1.0,
        io_timeout=0.5,
        max_retries=80,
        backoff_base=0.005,
        backoff_cap=0.03,
        rng=random.Random(seed),
    )


class TestFederatedServingE2E:
    def test_concurrent_clients_on_a_faulty_tree_match_flat_engine(self):
        """≥ 8 concurrent clients query a 2-level faulty tree during
        sustained ingest; once drained, every answer is bit-identical
        to a flat engine fed the same updates."""

        async def scenario():
            rng = random.Random(77)
            truth = StreamEngine(SPEC)

            root = CoordinatorServer(SPEC, port=0, query_port=0)
            await root.start()

            uplink_proxies = []
            leaves = []
            for i in range(2):
                proxy = FaultyTransport(
                    root.port, random.Random(100 + i),
                    duplicate=0.25, cut=0.2, max_faults=3,
                )
                await proxy.start()
                uplink_proxies.append(proxy)
                leaf = CoordinatorServer(
                    SPEC,
                    port=0,
                    parent_port=proxy.port,
                    uplink_id=f"leaf{i}",
                    uplink_options=uplink_options(110 + i),
                )
                await leaf.start()
                leaves.append(leaf)

            site_proxies = []
            clients = {}
            for i, leaf in enumerate([*leaves, *leaves]):
                proxy = FaultyTransport(
                    leaf.port, random.Random(120 + i),
                    duplicate=0.2, cut=0.15, max_faults=3,
                )
                await proxy.start()
                site_proxies.append(proxy)
                site_id = f"s{i}"
                clients[site_id] = make_site_client(
                    site_id, proxy.port, seed=130 + i
                )

            async def observe_and_ship(site_id, size):
                batch = [
                    Update(
                        stream=rng.choice(STREAMS),
                        element=rng.randrange(1, 6000),
                        delta=rng.choice([1, 1, 1, -1]),
                    )
                    for _ in range(size)
                ]
                clients[site_id].observe_many(batch)
                truth.process_many(batch)
                await clients[site_id].ship()

            # Seed round so every stream exists at the root before the
            # query clients start.
            for site_id in clients:
                await observe_and_ship(site_id, 30)
            for leaf in leaves:
                await leaf.ship_upstream()

            expressions = [
                "A",
                "A & B",
                "(A - B) | C",
                "B & (A | C)",
                "A - (B | C)",
            ]
            query_clients = [
                QueryClient("127.0.0.1", root.query_port)
                for _ in range(8)
            ]
            ingest_done = asyncio.Event()

            async def sustained_ingest():
                try:
                    for round_number in range(3):
                        for site_id in clients:
                            await observe_and_ship(site_id, 20)
                        for leaf in leaves:
                            await leaf.ship_upstream()
                finally:
                    ingest_done.set()

            async def querying_client(index, client):
                """Query continuously while ingest runs.

                Mid-flight answers race with folds, so the assertions
                are consistency properties: typed results, positions
                that never move backwards on one connection.
                """
                positions = []
                async with client:
                    while not ingest_done.is_set():
                        expression = expressions[
                            (index + len(positions)) % len(expressions)
                        ]
                        estimate = await client.query(expression, 0.25)
                        assert isinstance(estimate, WitnessEstimate)
                        positions.append(client.last_position)
                        await asyncio.sleep(0)
                assert positions == sorted(positions)
                return len(positions)

            answered = await asyncio.gather(
                sustained_ingest(),
                *(
                    querying_client(index, client)
                    for index, client in enumerate(query_clients)
                ),
            )
            assert sum(answered[1:]) >= 8  # every client got answers

            # Quiesce: final upstream flush, then the drained tree must
            # answer every expression bit-identically to the flat twin.
            for leaf in leaves:
                await leaf.ship_upstream()
            truth.flush()
            final_clients = [
                QueryClient("127.0.0.1", root.query_port)
                for _ in range(8)
            ]

            async def verify(client):
                async with client:
                    served = await client.query(expressions, 0.25)
                    union = await client.query_union(list(STREAMS), 0.25)
                return served, union

            outcomes = await asyncio.gather(
                *(verify(client) for client in final_clients)
            )
            expected = [truth.query(text, 0.25) for text in expressions]
            expected_union = truth.query_union(list(STREAMS), 0.25)
            for served, union in outcomes:
                assert served == expected
                assert union == expected_union

            for proxy in [*uplink_proxies, *site_proxies]:
                await proxy.stop()
            for leaf in leaves:
                await leaf.stop()
            await root.stop()

        run(scenario())
