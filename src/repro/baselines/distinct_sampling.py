"""Gibbons-style distinct sampling baseline.

Distinct sampling [Gibbons 2001; Gibbons & Tirthapura 2001] maintains a
uniform random sample of the *distinct* elements of an insert-only stream
by hashing each element to a geometric level (like the FM first level) and
keeping every distinct element at or above a current threshold level; when
the sample overflows its budget, the threshold rises and lower-level
elements are discarded.  The distinct count is estimated as
``|sample| * 2**level``.

The paper's critique — which this implementation makes observable — is the
behaviour under deletions: a deletion of a sampled element shrinks the
sample, and once the sample empties (or merely becomes unrepresentative),
only a rescan of past items could restore it.  ``delete`` processes legal
deletions of sampled elements, tracks :attr:`depletions`, and raises when
the sample underflows entirely.
"""

from __future__ import annotations

import numpy as np

from repro.core.family import _draw_family_hashes
from repro.core.sketch import SketchShape
from repro.errors import IllegalDeletionError
from repro.hashing.lsb import lsb

__all__ = ["DistinctSampler"]


class DistinctSampler:
    """Level-based uniform sample over the distinct elements of a stream."""

    def __init__(
        self, capacity: int = 256, seed: int = 0, domain_bits: int = 30
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.seed = seed
        self.domain_bits = domain_bits
        shape = SketchShape(domain_bits=domain_bits)
        self._hash = _draw_family_hashes(seed, 0, 1, shape)[0].first_level
        self.level = 0
        self._sample: dict[int, int] = {}  # element -> its hash level
        self.depletions = 0

    # -- maintenance ---------------------------------------------------------

    def insert(self, element: int) -> None:
        """Process one element insertion."""
        element = int(element)
        element_level = lsb(self._hash(element))
        if element_level < self.level or element in self._sample:
            return
        self._sample[element] = element_level
        while len(self._sample) > self.capacity:
            self.level += 1
            self._sample = {
                kept: kept_level
                for kept, kept_level in self._sample.items()
                if kept_level >= self.level
            }

    def insert_batch(self, elements) -> None:
        """Insert many elements, one at a time."""
        for element in np.asarray(elements, dtype=np.uint64):
            self.insert(int(element))

    def delete(self, element: int) -> None:
        """Process a deletion; raise once the sample is depleted.

        Deleting an unsampled element is invisible (correctly so — the
        sample remains uniform over surviving distinct elements).  Deleting
        a sampled element shrinks the sample; when the last sampled element
        disappears while the threshold level is above zero, the sampler can
        no longer say anything about the stream without rescanning it.
        """
        element = int(element)
        if element not in self._sample:
            return
        del self._sample[element]
        self.depletions += 1
        if not self._sample and self.level > 0:
            raise IllegalDeletionError(
                "distinct sample depleted by deletions; a rescan of past "
                "stream items would be required"
            )

    # -- estimation -------------------------------------------------------------

    @property
    def sample(self) -> set[int]:
        return set(self._sample)

    def estimate_distinct(self) -> float:
        """``|sample| * 2**level`` — unbiased under insert-only streams."""
        return float(len(self._sample) * (1 << self.level))
