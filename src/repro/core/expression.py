"""The general set-expression cardinality estimator (Section 4).

Generalises the witness pattern to an arbitrary expression
``E = (((A₁ op₁ A₂) op₂ A₃) … Aₙ)``:

1. estimate ``û ≈ |∪ᵢ Aᵢ|`` over every stream mentioned in ``E`` and pick
   the bucket index ``⌈log₂(β·û / (1−ε))⌉``;
2. discard sketches whose bucket is not a singleton for ``∪ᵢ Aᵢ`` (checked
   on the *merged* slab — sketch linearity makes the sum of the streams'
   counter slabs exactly the slab of the combined multiset);
3. for the survivors, evaluate the Boolean formula ``B(E)`` over the
   per-stream bucket non-emptiness bits: ``B(Aᵢ)`` is "bucket non-empty in
   ``X_{Aᵢ}``", ``∪ → ∨``, ``∩ → ∧``, ``− → ∧¬``.  Conditioned on the
   singleton event, the bucket's one element is in stream ``Aᵢ`` iff that
   stream's bucket is non-empty, so ``B(E)`` holds iff the element
   witnesses ``E``;
4. the witness fraction estimates ``|E| / |∪ᵢAᵢ|``; scale by ``û``.

Expressions may be passed as :class:`~repro.expr.ast.SetExpression` trees
or as text (parsed with :func:`repro.expr.parser.parse`).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.checks import combined_singleton_union_mask, empty_mask
from repro.core.family import SketchFamily
from repro.core.results import UnionEstimate, WitnessEstimate
from repro.core.witness import run_witness_estimator
from repro.errors import UnknownStreamError
from repro.expr.ast import SetExpression
from repro.expr.compile import compile_expression
from repro.expr.parser import parse

__all__ = ["estimate_expression"]


def estimate_expression(
    expression: SetExpression | str,
    families: Mapping[str, SketchFamily],
    epsilon: float = 0.1,
    union_estimate: float | UnionEstimate | None = None,
    pool_levels: int = 1,
) -> WitnessEstimate:
    """Estimate ``|E|`` for a general set expression over update streams.

    Parameters
    ----------
    expression:
        A :class:`SetExpression` tree or its textual form, e.g.
        ``"(A - B) & C"``.
    families:
        Maps each stream identifier mentioned in ``E`` to its
        :class:`SketchFamily`; all families must share one spec.  Extra
        entries are ignored.
    epsilon:
        Target relative error.
    union_estimate:
        Optional pre-computed ``û ≈ |∪ᵢ Aᵢ|`` over the participating
        streams.

    Raises
    ------
    UnknownStreamError
        If the expression references a stream with no supplied family.
    """
    if isinstance(expression, str):
        expression = parse(expression)

    names = sorted(expression.streams())
    missing = [name for name in names if name not in families]
    if missing:
        raise UnknownStreamError(
            f"no sketch family registered for stream(s): {', '.join(missing)}"
        )
    participating = [families[name] for name in names]

    # Compiled once per distinct expression (memoised): the flat postfix
    # program evaluates the same B(E) algebra as boolean_mask without an
    # AST walk per call — bit-identical by construction.
    program = compile_expression(expression)

    def witness_masks(slabs: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        valid = combined_singleton_union_mask(slabs)
        non_empty = {
            name: ~empty_mask(slab) for name, slab in zip(names, slabs)
        }
        witness = program.evaluate(non_empty)
        return valid, witness

    return run_witness_estimator(
        participating, witness_masks, epsilon, union_estimate,
        pool_levels=pool_levels,
    )
