"""Compiled set expressions: flat postfix programs over stream-bit arrays.

:meth:`~repro.expr.ast.SetExpression.boolean_mask` walks the expression
tree on every evaluation — one Python call per node per query.  For
*standing* queries the tree is fixed while evaluation repeats thousands
of times, so :func:`compile_expression` lowers the tree once into a flat
postfix program whose ops are numpy boolean kernels:

* ``LOAD name`` — push stream *name*'s bucket non-emptiness mask;
* ``OR`` / ``AND`` — pop two masks, push their ∨ / ∧ (the paper's
  ``B(E₁ ∪ E₂)`` / ``B(E₁ ∩ E₂)``);
* ``DIFF`` — pop two masks, push ``left ∧ ¬right`` (``B(E₁ − E₂)``).

Evaluation reuses scratch buffers where ownership allows (a popped
intermediate becomes the output of the next op), so a deep expression
costs one allocation per *leaf-adjacent* op rather than one per node —
and no Python-level recursion.  The program is **bit-identical** to
``boolean_mask``: both compute the same ∨/∧/∧¬ algebra over the same
inputs (property-tested in ``tests/expr/test_compile.py``).

Programs are memoised per expression (expressions are frozen, hashable
trees), so the engine's shared-tick evaluator and the continuous-query
processor compile each registered expression exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping

import numpy as np

from repro.errors import ExpressionError
from repro.expr.ast import (
    DifferenceExpr,
    IntersectionExpr,
    SetExpression,
    StreamRef,
    UnionExpr,
)

__all__ = ["CompiledExpression", "compile_expression"]

# Opcodes.  LOAD carries the stream name; FALLBACK carries a subtree that
# is not one of the four core node types (user subclasses keep working —
# the subtree's own boolean_mask is invoked as a single op).
_LOAD, _OR, _AND, _DIFF, _FALLBACK = range(5)

_SYMBOLS = {_OR: "OR", _AND: "AND", _DIFF: "DIFF"}


@dataclass(frozen=True)
class CompiledExpression:
    """A set expression lowered to a postfix boolean program.

    Obtained from :func:`compile_expression`; evaluate with
    :meth:`evaluate` over the same per-stream mask mapping
    :meth:`~repro.expr.ast.SetExpression.boolean_mask` takes.
    """

    source: SetExpression
    ops: tuple[tuple[int, object], ...]
    streams: frozenset[str]

    def evaluate(self, masks: Mapping[str, np.ndarray]) -> np.ndarray:
        """Run the program; bit-identical to ``source.boolean_mask(masks)``.

        Like ``boolean_mask``, the result may alias an input mask when
        the expression is a bare stream reference — treat it as
        read-only or combine it into a fresh array.
        """
        stack: list[tuple[np.ndarray, bool]] = []  # (mask, scratch-owned)
        for opcode, operand in self.ops:
            if opcode == _LOAD:
                stack.append((np.asarray(masks[operand], dtype=bool), False))
                continue
            if opcode == _FALLBACK:
                stack.append(
                    (np.asarray(operand.boolean_mask(masks), dtype=bool), True)
                )
                continue
            right, right_owned = stack.pop()
            left, left_owned = stack.pop()
            if opcode == _OR:
                if left_owned:
                    out = np.logical_or(left, right, out=left)
                elif right_owned:
                    out = np.logical_or(left, right, out=right)
                else:
                    out = np.logical_or(left, right)
            elif opcode == _AND:
                if left_owned:
                    out = np.logical_and(left, right, out=left)
                elif right_owned:
                    out = np.logical_and(left, right, out=right)
                else:
                    out = np.logical_and(left, right)
            else:  # _DIFF: left ∧ ¬right
                if right_owned:
                    np.logical_not(right, out=right)
                    out = np.logical_and(left, right, out=right)
                else:
                    out = np.logical_not(right)
                    np.logical_and(left, out, out=out)
            stack.append((out, True))
        if len(stack) != 1:  # pragma: no cover - compiler invariant
            raise ExpressionError("corrupt compiled program")
        return stack[0][0]

    def __len__(self) -> int:
        return len(self.ops)

    def as_text(self) -> str:
        """Human-readable program listing (one op per line)."""
        lines = []
        for opcode, operand in self.ops:
            if opcode == _LOAD:
                lines.append(f"LOAD {operand}")
            elif opcode == _FALLBACK:
                lines.append(f"MASK {operand.to_text()}")
            else:
                lines.append(_SYMBOLS[opcode])
        return "\n".join(lines)


def _emit(node: SetExpression, ops: list[tuple[int, object]]) -> None:
    if isinstance(node, StreamRef):
        ops.append((_LOAD, node.name))
    elif isinstance(node, UnionExpr):
        _emit(node.left, ops)
        _emit(node.right, ops)
        ops.append((_OR, None))
    elif isinstance(node, IntersectionExpr):
        _emit(node.left, ops)
        _emit(node.right, ops)
        ops.append((_AND, None))
    elif isinstance(node, DifferenceExpr):
        _emit(node.left, ops)
        _emit(node.right, ops)
        ops.append((_DIFF, None))
    else:
        # Unknown node type (a user extension): evaluate its subtree via
        # its own boolean_mask in one opaque op.
        ops.append((_FALLBACK, node))


@lru_cache(maxsize=1024)
def _compile_cached(expression: SetExpression) -> CompiledExpression:
    ops: list[tuple[int, object]] = []
    _emit(expression, ops)
    return CompiledExpression(
        source=expression, ops=tuple(ops), streams=expression.streams()
    )


def compile_expression(expression: SetExpression) -> CompiledExpression:
    """Lower an expression tree to a :class:`CompiledExpression`.

    Memoised: repeated compilation of an equal tree (standing queries,
    the engine's shared-tick evaluator) returns the cached program.
    """
    return _compile_cached(expression)
