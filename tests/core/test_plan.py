"""Tests for the shared hash-plan layer (:mod:`repro.core.plan`).

The load-bearing property is *exactness*: plan-based maintenance must
leave counters bit-identical to the classic per-sketch path on any
workload, any shape, any cache configuration — the plan is a
reorganisation of identical integer arithmetic, never an approximation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.plan import (
    DEFAULT_CACHE_SIZE,
    STACKED_HASH_MAX,
    DenseScatterTable,
    HashPlan,
    HashPlanStats,
    ScatterParts,
    plan_for,
)
from repro.core.sketch import SketchShape
from repro.errors import DomainError, IncompatibleSketchesError

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=4)


def spec(num_sketches: int = 8, seed: int = 0, shape: SketchShape = SHAPE) -> SketchSpec:
    return SketchSpec(num_sketches=num_sketches, shape=shape, seed=seed)


def mixed_workload(rng, size: int, domain: int):
    """Skewed elements with insert/delete churn (hot head repeats)."""
    elements = (rng.zipf(1.3, size=size) - 1) % domain
    counts = rng.choice(np.asarray([-2, -1, 1, 1, 3], dtype=np.int64), size)
    return elements.astype(np.uint64), counts


class TestRowExactness:
    @pytest.mark.parametrize("n", [1, 10, 100, STACKED_HASH_MAX, STACKED_HASH_MAX + 1, 5000])
    def test_compute_rows_matches_per_sketch_hashing(self, n):
        """Stacked and per-sketch fill regimes produce identical rows."""
        s = spec(6, seed=3)
        plan = HashPlan(s.hashes(), s.shape, cache_size=0)
        rng = np.random.default_rng(n)
        elements = rng.integers(0, s.shape.domain_size, size=n, dtype=np.uint64)
        rows = plan.compute_rows(elements)

        shape = s.shape
        for k, hashes in enumerate(s.hashes()):
            from repro.hashing.lsb import lsb_array

            levels = lsb_array(hashes.first_level(elements))
            bits = hashes.second_level.bits(elements)  # (n, s)
            for j in range(shape.num_second_level):
                expected = (
                    (k * shape.num_levels + levels) * shape.num_second_level + j
                ) * 2 + bits[:, j]
                got = rows[:, k * shape.num_second_level + j]
                assert np.array_equal(got, expected)

    def test_cached_rows_equal_fresh_rows(self):
        s = spec(4, seed=9)
        plan = HashPlan(s.hashes(), s.shape, cache_size=64)
        rng = np.random.default_rng(1)
        elements = rng.integers(0, s.shape.domain_size, size=40, dtype=np.uint64)
        first = plan.scatter_rows(elements)
        second = plan.scatter_rows(elements)  # all hits now
        assert np.array_equal(first, second)
        assert plan.stats().hits >= elements.size  # second pass from cache


class TestMaintenanceEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n", [10, 1000, 5000])
    def test_update_batch_bit_identical(self, seed, n):
        """Randomised mixed insert/delete workloads, plan vs per-sketch."""
        s = spec(8, seed=seed)
        rng = np.random.default_rng(100 + seed)
        elements, counts = mixed_workload(rng, n, s.shape.domain_size)
        via_plan, via_sketch = s.build(), s.build()
        via_plan.update_batch(elements, counts, plan="auto")
        via_sketch.update_batch(elements, counts, plan=None)
        assert np.array_equal(via_plan.counters, via_sketch.counters)

    @pytest.mark.parametrize(
        "shape",
        [
            SketchShape(domain_bits=16, num_second_level=4, independence=4),
            SketchShape(domain_bits=24, num_second_level=16, independence=8),
        ],
    )
    def test_shapes_bit_identical(self, shape):
        s = spec(12, seed=5, shape=shape)
        rng = np.random.default_rng(7)
        elements, counts = mixed_workload(rng, 3000, shape.domain_size)
        via_plan, via_sketch = s.build(), s.build()
        via_plan.update_batch(elements, counts, plan="auto")
        via_sketch.update_batch(elements, counts, plan=None)
        assert np.array_equal(via_plan.counters, via_sketch.counters)

    @pytest.mark.parametrize("cache_size", [0, 16, DEFAULT_CACHE_SIZE])
    def test_cache_configurations_bit_identical(self, cache_size):
        """Cache off, tiny (evicting), and default all yield the same
        counters across repeated overlapping batches."""
        s = spec(6, seed=11)
        plan = HashPlan(s.hashes(), s.shape, cache_size=cache_size)
        rng = np.random.default_rng(13)
        via_plan, via_sketch = s.build(), s.build()
        for _ in range(5):
            elements, counts = mixed_workload(rng, 400, 1 << 10)  # overlap-heavy
            via_plan.update_batch(elements, counts, plan=plan)
            via_sketch.update_batch(elements, counts, plan=None)
        assert np.array_equal(via_plan.counters, via_sketch.counters)

    def test_unweighted_and_uniform_batches(self):
        s = spec(4, seed=2)
        rng = np.random.default_rng(3)
        elements = rng.integers(0, s.shape.domain_size, size=500, dtype=np.uint64)
        for counts in (None, np.full(500, -3, dtype=np.int64)):
            via_plan, via_sketch = s.build(), s.build()
            via_plan.update_batch(elements, counts, plan="auto")
            via_sketch.update_batch(elements, counts, plan=None)
            assert np.array_equal(via_plan.counters, via_sketch.counters)

    def test_scan_flood_bypass_still_exact(self):
        """A batch that trips the bypass heuristic must fall back to the
        per-sketch path, not drop updates."""
        s = spec(4, seed=21)
        plan = HashPlan(s.hashes(), s.shape, cache_size=32)
        rng = np.random.default_rng(22)
        elements = rng.permutation(s.shape.domain_size)[: STACKED_HASH_MAX + 500]
        elements = elements.astype(np.uint64)  # all distinct: a scan
        via_plan, via_sketch = s.build(), s.build()
        via_plan.update_batch(elements, plan=plan)
        via_sketch.update_batch(elements, plan=None)
        assert np.array_equal(via_plan.counters, via_sketch.counters)
        assert plan.stats().bypasses >= 1

    def test_ingest_batch_bit_identical(self):
        s = spec(8, seed=4)
        rng = np.random.default_rng(5)
        elements, counts = mixed_workload(rng, 4000, 1 << 12)
        via_plan, via_sketch = s.build(), s.build()
        applied_plan = via_plan.ingest_batch(elements, counts, plan="auto")
        applied_sketch = via_sketch.ingest_batch(elements, counts, plan=None)
        assert applied_plan == applied_sketch
        assert np.array_equal(via_plan.counters, via_sketch.counters)

    def test_engines_bit_identical_across_shards(self):
        """StreamEngine and ShardedEngine (plan on/off) all agree."""
        from repro.streams.engine import StreamEngine
        from repro.streams.sharded import ShardedEngine
        from repro.streams.updates import Update

        s = spec(8, seed=6)
        rng = np.random.default_rng(8)
        updates = [
            Update(f"S{int(which)}", int(element), int(delta))
            for which, (element, delta) in zip(
                rng.integers(0, 2, size=3000),
                zip(*mixed_workload(rng, 3000, 1 << 10)),
            )
        ]
        reference = StreamEngine(s, use_plan=False)
        reference.process_many(updates)
        reference.flush()
        planned = StreamEngine(s, use_plan=True)
        planned.process_many(updates)
        planned.flush()
        for num_shards in (1, 3):
            with ShardedEngine(
                s, num_shards=num_shards, batch_size=256, executor="serial"
            ) as sharded:
                sharded.process_many(updates)
                for name in reference.stream_names():
                    assert np.array_equal(
                        sharded.family(name).counters,
                        reference.family(name).counters,
                    )
        for name in reference.stream_names():
            assert np.array_equal(
                planned.family(name).counters, reference.family(name).counters
            )


class TestCacheIsolation:
    def test_cache_never_leaks_across_different_coins(self):
        """Two specs differing only in seed must see independent plans —
        and produce each its own correct counters even when their caches
        are exercised with the same elements, interleaved."""
        spec_a, spec_b = spec(6, seed=100), spec(6, seed=200)
        plan_a, plan_b = plan_for(spec_a), plan_for(spec_b)
        assert plan_a is not plan_b
        assert plan_for(spec_a) is plan_a  # memoised per spec

        rng = np.random.default_rng(9)
        elements = rng.integers(0, SHAPE.domain_size, size=300, dtype=np.uint64)
        fam_a, fam_b = spec_a.build(), spec_b.build()
        ref_a, ref_b = spec_a.build(), spec_b.build()
        for _ in range(3):  # interleave: same elements through both caches
            fam_a.update_batch(elements, plan="auto")
            fam_b.update_batch(elements, plan="auto")
            ref_a.update_batch(elements, plan=None)
            ref_b.update_batch(elements, plan=None)
        assert np.array_equal(fam_a.counters, ref_a.counters)
        assert np.array_equal(fam_b.counters, ref_b.counters)
        # Different coins ⇒ different rows for the same element.
        rows_a = plan_a.compute_rows(elements[:8])
        rows_b = plan_b.compute_rows(elements[:8])
        assert not np.array_equal(rows_a, rows_b)

    def test_equal_specs_share_one_plan(self):
        assert plan_for(spec(6, seed=300)) is plan_for(spec(6, seed=300))

    def test_foreign_plan_rejected(self):
        other = spec(6, seed=400)
        family = spec(6, seed=401).build()
        with pytest.raises(IncompatibleSketchesError):
            family.update_batch(
                np.asarray([1], dtype=np.uint64), plan=HashPlan(other.hashes(), other.shape)
            )


class TestPlanBehaviour:
    def test_domain_error_preserved(self):
        family = spec(4, seed=1).build()
        too_big = np.asarray([SHAPE.domain_size], dtype=np.uint64)
        with pytest.raises(DomainError):
            family.update_batch(too_big, plan="auto")
        with pytest.raises(DomainError):
            family.update_batch(too_big, plan=None)

    def test_bad_plan_string_rejected(self):
        family = spec(4, seed=1).build()
        with pytest.raises(ValueError):
            family.update_batch(np.asarray([1], dtype=np.uint64), plan="bogus")

    def test_lru_evicts_oldest(self):
        s = spec(2, seed=15)
        plan = HashPlan(s.hashes(), s.shape, cache_size=4)
        # Batches stay below capacity: a whole-capacity miss burst is
        # deliberately not inserted (anti-pollution guard).
        plan.scatter_rows(np.arange(3, dtype=np.uint64))
        plan.scatter_rows(np.asarray([3, 4], dtype=np.uint64))  # evicts 0
        stats = plan.stats()
        assert stats.evictions == 1
        assert stats.entries == 4
        plan.scatter_rows(np.asarray([0], dtype=np.uint64))  # 0 is a miss again
        assert plan.stats().misses == 6

    def test_stats_roundtrip_and_merge(self):
        stats = HashPlanStats(
            hits=3, misses=2, evictions=1, bypasses=1, entries=2,
            capacity=8, hash_seconds=0.5, scatter_seconds=0.25,
        )
        assert stats.lookups == 5
        assert stats.hit_rate == pytest.approx(0.6)
        again = HashPlanStats.from_json_dict(stats.to_json_dict())
        assert again == stats
        merged = stats.merged_with(again)
        assert merged.hits == 6 and merged.hash_seconds == pytest.approx(1.0)
        assert HashPlanStats().hit_rate == 0.0

    def test_clear_cache_and_reset_stats(self):
        s = spec(2, seed=16)
        plan = HashPlan(s.hashes(), s.shape, cache_size=16)
        plan.scatter_rows(np.arange(8, dtype=np.uint64))
        assert plan.stats().entries == 8
        plan.clear_cache()
        assert plan.stats().entries == 0
        plan.reset_stats()
        empty = plan.stats()
        assert empty.lookups == 0 and empty.hash_seconds == 0.0

    def test_validation(self):
        s = spec(2, seed=17)
        with pytest.raises(ValueError):
            HashPlan([], SHAPE)
        with pytest.raises(ValueError):
            HashPlan(s.hashes(), SHAPE, cache_size=-1)
        wrong_shape = SketchShape(domain_bits=20, num_second_level=4, independence=4)
        with pytest.raises(IncompatibleSketchesError):
            HashPlan(s.hashes(), wrong_shape)

    def test_threaded_sharing_stays_exact(self):
        """Concurrent families hammering one plan (the sharded-threads
        topology) must not corrupt cached rows."""
        from concurrent.futures import ThreadPoolExecutor

        s = spec(4, seed=18)
        plan = HashPlan(s.hashes(), s.shape, cache_size=64)  # tiny: evicts hard
        rng = np.random.default_rng(19)
        batches = [
            mixed_workload(np.random.default_rng(seed), 300, 1 << 8)
            for seed in range(12)
        ]
        families = [s.build() for _ in range(4)]
        references = [s.build() for _ in range(4)]

        def work(index):
            family = families[index]
            for elements, counts in batches:
                family.update_batch(elements, counts, plan=plan)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(work, range(4)))
        for reference in references:
            for elements, counts in batches:
                reference.update_batch(elements, counts, plan=None)
        for family, reference in zip(families, references):
            assert np.array_equal(family.counters, reference.counters)


def dense_plan(s: SketchSpec, limit: int | None = None, keys=None, cache_size: int = 256) -> HashPlan:
    """A private plan (same coins as the canonical one) with a dense
    table attached — private so tests never contaminate ``plan_for``'s
    memoised instance."""
    plan = HashPlan(s.hashes(), s.shape, cache_size=cache_size)
    if limit is not None:
        plan.ensure_dense_domain(limit)
    if keys is not None:
        plan.ensure_dense_keys(keys)
    return plan


class TestDenseScatterTable:
    """The precomputed-scatter fast path: gathers must be bit-identical
    to hashing, in both key layouts, across every maintenance entry
    point, straddling the dense→fallback boundary."""

    LIMIT = 1 << 10

    def test_local_rows_match_hashing(self):
        """Table rows re-globalised equal compute_rows exactly."""
        s = spec(6, seed=21)
        plan = dense_plan(s, limit=self.LIMIT)
        table = plan.dense_table
        assert table.rows.dtype == np.dtype(plan.local_row_dtype)
        keys = np.arange(self.LIMIT, dtype=np.uint64)
        assert np.array_equal(
            plan.globalize_rows(table.rows), plan.compute_rows(keys)
        )

    def test_globalize_roundtrip(self):
        """local = global − offsets and back, column-wise."""
        s = spec(5, seed=22)
        plan = dense_plan(s, limit=64)
        global_rows = plan.compute_rows(np.arange(64, dtype=np.uint64))
        local = (global_rows - plan.row_offsets[None, :]).astype(
            plan.local_row_dtype
        )
        assert np.array_equal(plan.globalize_rows(local), global_rows)
        assert int(local.max()) < plan.cells_per_sketch

    def test_dictionary_layout_matches_contiguous(self):
        """A hot-key dictionary over the same keys serves identical rows."""
        s = spec(6, seed=23)
        rng = np.random.default_rng(23)
        keys = np.unique(
            rng.integers(0, s.shape.domain_size, size=500, dtype=np.uint64)
        )
        contiguous = dense_plan(s, limit=self.LIMIT)
        dictionary = dense_plan(s, keys=keys)
        assert not dictionary.dense_table.contiguous
        probe = keys[:: 3]
        assert np.array_equal(
            contiguous.compute_rows(probe), dictionary.scatter_rows(probe)
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_update_batch_bit_identical(self, seed):
        """Mixed insert/delete batches straddling the dense boundary."""
        s = spec(8, seed=seed)
        rng = np.random.default_rng(200 + seed)
        # half inside [0, LIMIT), half far outside: every batch mixes
        # dense gathers with LRU-tail hashing
        elements, counts = mixed_workload(rng, 3000, s.shape.domain_size)
        elements[::2] %= self.LIMIT
        plan = dense_plan(s, limit=self.LIMIT)
        via_dense, via_lru, via_sketch = s.build(), s.build(), s.build()
        via_dense.update_batch(elements, counts, plan=plan)
        via_lru.update_batch(
            elements, counts, plan=HashPlan(s.hashes(), s.shape)
        )
        via_sketch.update_batch(elements, counts, plan=None)
        assert np.array_equal(via_dense.counters, via_sketch.counters)
        assert np.array_equal(via_lru.counters, via_sketch.counters)
        assert plan.stats().dense_hits > 0

    def test_scalar_updates_bit_identical(self):
        """Single-element batches through the dense path (covered and
        uncovered) match ``update``."""
        s = spec(4, seed=31)
        plan = dense_plan(s, limit=self.LIMIT)
        via_dense, reference = s.build(), s.build()
        for element, count in ((3, 1), (self.LIMIT - 1, -2), (self.LIMIT, 5), (999_000, 1)):
            via_dense.update_batch(
                np.asarray([element], dtype=np.uint64),
                np.asarray([count], dtype=np.int64),
                plan=plan,
            )
            reference.update(element, count)
        assert np.array_equal(via_dense.counters, reference.counters)

    def test_ingest_batch_bit_identical(self):
        """The aggregating ingest path over a dense plan (single
        scatter_parts call, delta-group subsets) matches per-sketch."""
        s = spec(8, seed=33)
        rng = np.random.default_rng(33)
        elements, counts = mixed_workload(rng, 4000, s.shape.domain_size)
        elements[::3] %= self.LIMIT
        plan = dense_plan(s, limit=self.LIMIT)
        via_dense, via_sketch = s.build(), s.build()
        applied = via_dense.ingest_batch(elements, counts, plan=plan)
        for element, count in zip(elements.tolist(), counts.tolist()):
            via_sketch.update(element, count)
        assert np.array_equal(via_dense.counters, via_sketch.counters)
        assert applied <= elements.size

    def test_merge_and_checkpoint_bit_identical(self):
        """Dense-maintained counters survive merge and byte round-trips
        exactly like classic ones."""
        s = spec(6, seed=35)
        rng = np.random.default_rng(35)
        plan = dense_plan(s, limit=self.LIMIT)
        halves_dense = [s.build(), s.build()]
        halves_ref = [s.build(), s.build()]
        for half_dense, half_ref, seed in zip(halves_dense, halves_ref, (1, 2)):
            elements, counts = mixed_workload(
                np.random.default_rng(seed), 1500, s.shape.domain_size
            )
            elements[::2] %= self.LIMIT
            half_dense.update_batch(elements, counts, plan=plan)
            half_ref.update_batch(elements, counts, plan=None)
        merged_dense = halves_dense[0].merged_with(halves_dense[1])
        merged_ref = halves_ref[0].merged_with(halves_ref[1])
        assert np.array_equal(merged_dense.counters, merged_ref.counters)
        restored = type(merged_dense).from_bytes(merged_dense.to_bytes(), s)
        assert np.array_equal(restored.counters, merged_ref.counters)

    def test_boundary_all_dense_all_tail(self):
        """Batches entirely inside, entirely outside, and exactly at the
        table limit all stay exact."""
        s = spec(4, seed=37)
        plan = dense_plan(s, limit=self.LIMIT)
        cases = [
            np.arange(self.LIMIT - 8, self.LIMIT, dtype=np.uint64),   # all dense
            np.arange(self.LIMIT, self.LIMIT + 8, dtype=np.uint64),   # all tail
            np.arange(self.LIMIT - 4, self.LIMIT + 4, dtype=np.uint64),  # split
        ]
        for elements in cases:
            via_dense, via_sketch = s.build(), s.build()
            via_dense.update_batch(elements, plan=plan)
            via_sketch.update_batch(elements, plan=None)
            assert np.array_equal(via_dense.counters, via_sketch.counters)

    @pytest.mark.parametrize("seed", [40, 41, 42, 43])
    def test_mixed_fuzz(self, seed):
        """Randomised dense/tail mixes with duplicate-heavy churn across
        repeated batches on one family."""
        s = spec(8, seed=7)
        rng = np.random.default_rng(seed)
        plan = dense_plan(s, limit=self.LIMIT, cache_size=32)  # tiny: evicts
        via_dense, via_sketch = s.build(), s.build()
        for _ in range(6):
            size = int(rng.integers(1, 600))
            elements, counts = mixed_workload(rng, size, s.shape.domain_size)
            mask = rng.random(size) < rng.random()  # varying dense fraction
            elements[mask] %= self.LIMIT
            via_dense.update_batch(elements, counts, plan=plan)
            via_sketch.update_batch(elements, counts, plan=None)
        assert np.array_equal(via_dense.counters, via_sketch.counters)

    def test_scan_flood_with_dense_stays_on_fast_path(self):
        """A partially-covered scan flood hashes its tail instead of
        falling back to per-sketch maintenance (gathered rows are
        already paid for), and the flood is not admitted to the LRU."""
        s = spec(4, seed=44)
        plan = dense_plan(s, limit=self.LIMIT, cache_size=16)
        elements = np.arange(0, 6000, dtype=np.uint64)  # 1024 dense, rest tail
        via_dense, via_sketch = s.build(), s.build()
        via_dense.update_batch(elements, plan=plan)
        via_sketch.update_batch(elements, plan=None)
        assert np.array_equal(via_dense.counters, via_sketch.counters)
        stats = plan.stats()
        assert stats.dense_hits == self.LIMIT  # served by gather, not bypassed
        assert stats.entries == 0  # flood skipped cache admission

    def test_level_totals_match(self):
        """The dirty-level aggregates (bucket keys from local rows) agree
        with classic maintenance, not just the counters."""
        s = spec(6, seed=45)
        rng = np.random.default_rng(45)
        elements, counts = mixed_workload(rng, 2000, s.shape.domain_size)
        elements[::2] %= self.LIMIT
        plan = dense_plan(s, limit=self.LIMIT)
        via_dense, via_sketch = s.build(), s.build()
        via_dense.update_batch(elements, counts, plan=plan)
        via_sketch.update_batch(elements, counts, plan=None)
        via_sketch.refresh_aggregates()
        assert np.array_equal(
            via_dense.level_totals(), via_sketch.level_totals()
        )

    def test_attach_validation(self):
        """Wrong row width and wrong dtype are both rejected."""
        s = spec(4, seed=46)
        other = spec(6, seed=46)
        plan = HashPlan(s.hashes(), s.shape)
        wrong_width = DenseScatterTable.build(
            HashPlan(other.hashes(), other.shape), limit=16
        )
        with pytest.raises(IncompatibleSketchesError):
            plan.attach_dense(wrong_width)
        good = DenseScatterTable.build(plan, limit=16)
        widened = DenseScatterTable(
            good.rows.astype(np.int64), keys=None
        )
        with pytest.raises(IncompatibleSketchesError):
            plan.attach_dense(widened)

    def test_ensure_dense_domain_idempotent(self):
        s = spec(4, seed=47)
        plan = dense_plan(s, limit=256)
        table = plan.dense_table
        assert plan.ensure_dense_domain(128) is table  # covered: kept
        assert plan.ensure_dense_domain(256) is table
        bigger = plan.ensure_dense_domain(512)
        assert bigger is not table and bigger.limit == 512
        with pytest.raises(ValueError):
            plan.ensure_dense_domain(0)
        with pytest.raises(ValueError):
            plan.ensure_dense_domain(s.shape.domain_size + 1)
        assert plan.detach_dense() is bigger
        assert plan.dense_table is None

    def test_scatter_parts_subset(self):
        """``ScatterParts.subset`` selects consistently across the
        covered/dense/tail arrays (the ingest delta-group path)."""
        s = spec(4, seed=48)
        plan = dense_plan(s, limit=64)
        elements = np.asarray([3, 70, 10, 90, 63], dtype=np.uint64)
        parts = plan.scatter_parts(elements)
        assert parts is not None and parts.covered is not None
        keep = np.asarray([True, False, True, True, False])
        sub = parts.subset(keep)
        rows = plan.compute_rows(elements[keep])
        got = np.empty_like(rows)
        got[sub.covered] = plan.globalize_rows(sub.dense_rows)
        got[~sub.covered] = sub.tail_rows
        assert np.array_equal(got, rows)
        # all-dense and all-tail parts subset without covered masks
        all_dense = plan.scatter_parts(np.asarray([1, 2, 3], dtype=np.uint64))
        sub = all_dense.subset(np.asarray([True, False, True]))
        assert sub.dense_rows.shape[0] == 2 and sub.tail_rows is None
        all_tail = plan.scatter_parts(
            np.asarray([100, 200], dtype=np.uint64)
        )
        sub = all_tail.subset(np.asarray([False, True]))
        assert sub.covered is None and sub.tail_rows.shape[0] == 1

    def test_stats_report_dense_counters(self):
        s = spec(4, seed=49)
        plan = dense_plan(s, limit=64)
        family = s.build()
        family.update_batch(np.arange(32, dtype=np.uint64), plan=plan)
        stats = plan.stats()
        assert stats.dense_hits == 32
        assert stats.dense_entries == 64
        assert 0.0 < stats.dense_rate <= 1.0
