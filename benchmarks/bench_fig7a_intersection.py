"""Figure 7(a): average relative error for |A ∩ B| vs number of sketches.

Paper setting: u ≈ 2**18, s = 32 second-level hashes, three target
intersection sizes, 10-15 trials with 30%-trimmed averaging.  The bench
runs the same sweep at reduced scale (see DESIGN.md → substitutions);
``python -m repro.experiments.run_all --scale paper`` reproduces the full
setting.

Expected shape (and what the paper reports): error falls as sketches are
added, and larger |A ∩ B| / |A ∪ B| ratios give lower error at equal
space.
"""

from __future__ import annotations

from _common import print_figure

from repro.experiments.config import FIGURES, scaled_config
from repro.experiments.runner import run_sweep


def test_fig7a_intersection(benchmark):
    config = scaled_config(FIGURES["fig7a"], "bench")
    result = benchmark.pedantic(run_sweep, args=(config,), rounds=1, iterations=1)
    print_figure(result)

    # Shape assertions mirroring the paper's qualitative claims: the
    # largest-target series must end at a moderate error, and adding
    # sketches must help (comparing the sweep's ends).
    for series in result.series:
        assert series.errors[-1] <= series.errors[0] + 0.05
    largest_target = result.series[0]
    assert largest_target.errors[-1] < 0.35
