"""Unit tests for Venn-cell probability assignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.cells import CellAssignment, balanced_cell_probabilities
from repro.expr.parser import parse
from repro.expr.venn import all_cells, cells_of_expression


class TestBalancedProbabilities:
    @pytest.mark.parametrize("ratio", [0.5, 0.25, 0.03125])
    def test_expression_cells_carry_target_probability(self, ratio: float):
        expression = parse("A & B")
        assignment = balanced_cell_probabilities(expression, ratio)
        expression_cells = set(cells_of_expression(expression))
        mass = sum(
            float(p)
            for cell, p in zip(assignment.cells, assignment.probabilities)
            if cell in expression_cells
        )
        assert mass == pytest.approx(ratio, abs=1e-9)

    def test_probabilities_sum_to_one(self):
        assignment = balanced_cell_probabilities(parse("(A - B) & C"), 0.2)
        assert float(assignment.probabilities.sum()) == pytest.approx(1.0)

    def test_probabilities_nonnegative(self):
        assignment = balanced_cell_probabilities(parse("A - (B | C)"), 0.1)
        assert float(assignment.probabilities.min()) >= 0.0

    def test_binary_intersection_matches_paper_scheme(self):
        """For A∩B the paper gives {A,B}: e/u and {A}/{B}: (1-e/u)/2."""
        ratio = 0.25
        assignment = balanced_cell_probabilities(parse("A & B"), ratio)
        by_cell = dict(zip(assignment.cells, assignment.probabilities))
        assert float(by_cell[frozenset({"A", "B"})]) == pytest.approx(ratio)
        assert float(by_cell[frozenset({"A"})]) == pytest.approx((1 - ratio) / 2)
        assert float(by_cell[frozenset({"B"})]) == pytest.approx((1 - ratio) / 2)

    def test_streams_balanced_for_three_stream_expression(self):
        assignment = balanced_cell_probabilities(parse("(A - B) & C"), 0.25)
        sizes = [assignment.expected_stream_ratio(name) for name in ("A", "B", "C")]
        assert max(sizes) - min(sizes) < 0.05

    def test_unsatisfiable_with_positive_ratio_rejected(self):
        with pytest.raises(ValueError):
            balanced_cell_probabilities(parse("A - A"), 0.5)

    def test_unsatisfiable_with_zero_ratio_allowed(self):
        assignment = balanced_cell_probabilities(parse("A - A"), 0.0)
        assert float(assignment.probabilities.sum()) == pytest.approx(1.0)

    def test_tautology_with_partial_ratio_rejected(self):
        with pytest.raises(ValueError):
            balanced_cell_probabilities(parse("A | B"), 0.5)

    def test_tautology_with_full_ratio_allowed(self):
        assignment = balanced_cell_probabilities(parse("A | B"), 1.0)
        assert float(assignment.probabilities.sum()) == pytest.approx(1.0)

    def test_ratio_bounds(self):
        with pytest.raises(ValueError):
            balanced_cell_probabilities(parse("A & B"), -0.1)
        with pytest.raises(ValueError):
            balanced_cell_probabilities(parse("A & B"), 1.1)


class TestCellAssignment:
    def test_validation_alignment(self):
        with pytest.raises(ValueError):
            CellAssignment(all_cells(["A"]), np.array([0.5, 0.5]))

    def test_validation_sum(self):
        with pytest.raises(ValueError):
            CellAssignment(all_cells(["A", "B"]), np.array([0.5, 0.2, 0.2]))

    def test_validation_negative(self):
        with pytest.raises(ValueError):
            CellAssignment(all_cells(["A", "B"]), np.array([1.2, -0.1, -0.1]))

    def test_expected_stream_ratio(self):
        assignment = CellAssignment(
            all_cells(["A", "B"]), np.array([0.5, 0.3, 0.2])
        )
        assert assignment.expected_stream_ratio("A") == pytest.approx(0.7)
        assert assignment.expected_stream_ratio("B") == pytest.approx(0.5)
