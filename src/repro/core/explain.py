"""Explainable estimation: per-subexpression cardinality breakdown.

``explain_expression`` runs the general witness estimator once and then
re-evaluates the Boolean witness condition for *every node* of the
expression tree over the same valid observations — so all reported
numbers are mutually consistent (they share the level, the union
estimate, and the singleton events).  Useful for debugging a surprising
estimate ("is the intersection small, or is the whole union small?") and
for query optimisers that want every operator's selectivity from one
synopsis scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.checks import combined_singleton_union_mask, empty_mask
from repro.core.family import SketchFamily, check_same_coins
from repro.core.results import UnionEstimate, WitnessEstimate
from repro.core.union import estimate_union
from repro.core.witness import choose_witness_level
from repro.errors import EstimationError, UnknownStreamError
from repro.expr.ast import SetExpression
from repro.expr.parser import parse

__all__ = ["ExpressionExplanation", "explain_expression"]


@dataclass(frozen=True)
class ExpressionExplanation:
    """The full estimate plus one consistent estimate per subexpression."""

    estimate: WitnessEstimate
    #: Estimates keyed by each node's textual form, in depth-first order.
    subexpressions: tuple[tuple[str, WitnessEstimate], ...]

    def __float__(self) -> float:
        return self.estimate.value

    def cardinality_of(self, node_text: str) -> WitnessEstimate:
        """The estimate for the subexpression with the given textual form."""
        for text, estimate in self.subexpressions:
            if text == node_text:
                return estimate
        raise KeyError(f"no subexpression {node_text!r} in this explanation")

    def as_table(self) -> str:
        """ASCII table: one row per subexpression."""
        lines = [f"{'subexpression':40s} {'estimate':>12s} {'witnesses':>10s}"]
        for text, estimate in self.subexpressions:
            lines.append(
                f"{text:40s} {estimate.value:12,.0f} "
                f"{estimate.num_witnesses:6d}/{estimate.num_valid}"
            )
        return "\n".join(lines)


def explain_expression(
    expression: SetExpression | str,
    families: Mapping[str, SketchFamily],
    epsilon: float = 0.1,
    union_estimate: float | UnionEstimate | None = None,
) -> ExpressionExplanation:
    """Estimate ``|E|`` and every subexpression's cardinality consistently.

    Parameters mirror :func:`repro.core.expression.estimate_expression`;
    all estimates share one level, one union estimate, and one set of
    valid singleton observations.
    """
    if not (0 < epsilon < 1):
        raise ValueError("epsilon must be in (0, 1)")
    if isinstance(expression, str):
        expression = parse(expression)

    names = sorted(expression.streams())
    missing = [name for name in names if name not in families]
    if missing:
        raise UnknownStreamError(
            f"no sketch family registered for stream(s): {', '.join(missing)}"
        )
    participating = [families[name] for name in names]
    check_same_coins(*participating)

    if union_estimate is None:
        union_estimate = estimate_union(participating, epsilon / 3.0)
    union_value = float(union_estimate)
    num_sketches = participating[0].num_sketches

    if union_value <= 0.0:
        empty = WitnessEstimate(0.0, 0, 0.0, 0, 0, num_sketches)
        nodes = tuple(
            (node.to_text(), empty) for node in expression.subexpressions()
        )
        return ExpressionExplanation(estimate=empty, subexpressions=nodes)

    level = choose_witness_level(
        union_value, epsilon, participating[0].shape.num_levels
    )
    slabs = [family.level_slab(level) for family in participating]
    valid = combined_singleton_union_mask(slabs)
    num_valid = int(valid.sum())
    if num_valid == 0:
        raise EstimationError(
            f"no sketch yielded a valid atomic observation at level {level}"
        )
    non_empty = {name: ~empty_mask(slab) for name, slab in zip(names, slabs)}

    def estimate_node(node: SetExpression) -> WitnessEstimate:
        witness = node.boolean_mask(non_empty) & valid
        num_witnesses = int(np.asarray(witness).sum())
        return WitnessEstimate(
            value=(num_witnesses / num_valid) * union_value,
            level=level,
            union_estimate=union_value,
            num_valid=num_valid,
            num_witnesses=num_witnesses,
            num_sketches=num_sketches,
        )

    nodes = tuple(
        (node.to_text(), estimate_node(node))
        for node in expression.subexpressions()
    )
    return ExpressionExplanation(estimate=nodes[0][1], subexpressions=nodes)
