"""Unit tests for the update data model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.updates import Update, deletions, insertions, interleave


class TestUpdate:
    def test_fields(self):
        update = Update("A", 5, -2)
        assert update.stream == "A"
        assert update.element == 5
        assert update.delta == -2

    def test_zero_delta_rejected(self):
        with pytest.raises(ValueError):
            Update("A", 5, 0)

    def test_negative_element_rejected(self):
        with pytest.raises(ValueError):
            Update("A", -1, 1)

    def test_direction_flags(self):
        assert Update("A", 1, 3).is_insertion
        assert not Update("A", 1, 3).is_deletion
        assert Update("A", 1, -3).is_deletion

    def test_inverse(self):
        update = Update("A", 7, 4)
        assert update.inverse() == Update("A", 7, -4)
        assert update.inverse().inverse() == update

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Update("A", 1, 1).delta = 2


class TestHelpers:
    def test_insertions(self):
        updates = insertions("S", [1, 2, 3])
        assert all(u.stream == "S" and u.delta == 1 for u in updates)
        assert [u.element for u in updates] == [1, 2, 3]

    def test_insertions_with_count(self):
        updates = insertions("S", [1], count=5)
        assert updates[0].delta == 5

    def test_insertions_reject_bad_count(self):
        with pytest.raises(ValueError):
            insertions("S", [1], count=0)

    def test_deletions(self):
        updates = deletions("S", [1, 2], count=2)
        assert all(u.delta == -2 for u in updates)

    def test_deletions_reject_bad_count(self):
        with pytest.raises(ValueError):
            deletions("S", [1], count=-1)


class TestInterleave:
    def test_preserves_internal_order(self):
        rng = np.random.default_rng(90)
        first = insertions("A", range(50))
        second = insertions("B", range(50))
        merged = list(interleave([first, second], rng))
        assert len(merged) == 100
        a_elements = [u.element for u in merged if u.stream == "A"]
        b_elements = [u.element for u in merged if u.stream == "B"]
        assert a_elements == list(range(50))
        assert b_elements == list(range(50))

    def test_empty_sequences_skipped(self):
        rng = np.random.default_rng(91)
        merged = list(interleave([[], insertions("A", [1])], rng))
        assert len(merged) == 1

    def test_all_empty(self):
        rng = np.random.default_rng(92)
        assert list(interleave([], rng)) == []

    def test_single_sequence_passthrough(self):
        rng = np.random.default_rng(93)
        updates = insertions("A", [3, 1, 2])
        assert list(interleave([updates], rng)) == updates

    def test_actually_interleaves(self):
        """With two large sequences the merge should not be a plain
        concatenation (overwhelmingly unlikely under random interleaving)."""
        rng = np.random.default_rng(94)
        first = insertions("A", range(100))
        second = insertions("B", range(100))
        merged = list(interleave([first, second], rng))
        streams_in_order = [u.stream for u in merged]
        assert streams_in_order != ["A"] * 100 + ["B"] * 100
