"""Command-line interface for the repro toolkit.

Subcommands cover the full life of a deployment:

``repro generate``
    Synthesise a controlled update log for a target expression (the
    paper's Section 5.1 generator), optionally with insert/delete churn.
``repro ingest``
    One-pass build of sketch synopses from an update log, checkpointed to
    a directory.
``repro query``
    Estimate set-expression cardinalities from a checkpoint — no access
    to the original stream.
``repro plan``
    Synopsis sizing for a target (ε, δ) from the paper's space bounds.
``repro simplify``
    Analyse and canonicalise a set expression (satisfiability, Venn
    cells, minimal-ish equivalent form).
``repro exact``
    Ground-truth cardinalities by exact replay of an update log.
``repro experiment``
    Regenerate the paper's figures (delegates to
    ``repro.experiments.run_all``).

Example session::

    repro generate --expression "(A - B) & C" --union-size 100000 \
        --target-ratio 0.25 --churn 0.5 --out /tmp/updates.log.gz
    repro ingest --log /tmp/updates.log.gz --checkpoint /tmp/synopses \
        --sketches 256
    repro query --checkpoint /tmp/synopses --expression "(A - B) & C" \
        --explain
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for all subcommands (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="2-level hash sketches: set-expression cardinality "
        "estimation over update streams (SIGMOD 2003 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="synthesise a controlled update log"
    )
    generate.add_argument("--expression", required=True, help='e.g. "(A - B) & C"')
    generate.add_argument("--union-size", type=int, default=1 << 14)
    generate.add_argument("--target-ratio", type=float, default=0.25)
    generate.add_argument(
        "--churn",
        type=float,
        default=0.0,
        help="phantom insert+delete pairs per real element (0 = insert-only)",
    )
    generate.add_argument("--domain-bits", type=int, default=30)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", type=pathlib.Path, required=True)

    ingest = subparsers.add_parser(
        "ingest", help="build synopses from an update log"
    )
    ingest.add_argument("--log", type=pathlib.Path, required=True)
    ingest.add_argument("--checkpoint", type=pathlib.Path, required=True)
    ingest.add_argument("--sketches", type=int, default=256)
    ingest.add_argument("--second-level", type=int, default=16)
    ingest.add_argument("--independence", type=int, default=8)
    ingest.add_argument("--domain-bits", type=int, default=30)
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument(
        "--shards", type=int, default=1,
        help="partition ingest across N parallel shards (1 = single engine)",
    )
    ingest.add_argument(
        "--executor", choices=("serial", "threads", "processes"),
        default="threads",
        help="shard backend when --shards > 1",
    )

    query = subparsers.add_parser(
        "query", help="estimate |E| from checkpointed synopses"
    )
    query.add_argument("--checkpoint", type=pathlib.Path, required=True)
    query.add_argument(
        "--expression", action="append", required=True,
        help="may be given multiple times",
    )
    query.add_argument("--epsilon", type=float, default=0.1)
    query.add_argument(
        "--explain", action="store_true",
        help="also print per-subexpression estimates",
    )

    plan = subparsers.add_parser(
        "plan", help="synopsis sizing for a target (epsilon, delta)"
    )
    plan.add_argument("--epsilon", type=float, default=0.1)
    plan.add_argument("--delta", type=float, default=0.05)
    plan.add_argument(
        "--ratio", type=float, default=0.1,
        help="smallest |E| / |union| the workload must resolve",
    )
    plan.add_argument("--streams", type=int, default=2)

    simplify = subparsers.add_parser(
        "simplify", help="analyse and canonicalise a set expression"
    )
    simplify.add_argument("--expression", required=True)

    exact = subparsers.add_parser(
        "exact", help="exact |E| from an update log (ground truth)"
    )
    exact.add_argument("--log", type=pathlib.Path, required=True)
    exact.add_argument(
        "--expression", action="append", required=True,
        help="may be given multiple times",
    )

    experiment = subparsers.add_parser(
        "experiment", help="regenerate the paper's figures"
    )
    experiment.add_argument(
        "--scale", choices=("bench", "medium", "paper"), default="medium"
    )
    experiment.add_argument("--figure", nargs="*", default=None)
    experiment.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("experiments_output")
    )

    return parser


def _command_generate(args: argparse.Namespace) -> int:
    from repro.datagen.controlled import generate_controlled
    from repro.datagen.updates_gen import with_phantom_deletions
    from repro.streams.sources import save_updates
    from repro.streams.updates import insertions

    rng = np.random.default_rng(args.seed)
    dataset = generate_controlled(
        args.expression,
        args.union_size,
        args.target_ratio,
        rng,
        domain_bits=args.domain_bits,
    )
    updates = []
    for name in dataset.stream_names():
        if args.churn > 0:
            updates.extend(
                with_phantom_deletions(
                    name,
                    dataset.elements[name],
                    rng,
                    phantom_fraction=args.churn,
                    domain_bits=args.domain_bits,
                )
            )
        else:
            updates.extend(
                insertions(name, (int(e) for e in dataset.elements[name]))
            )
    written = save_updates(args.out, updates)
    print(f"wrote {written:,} updates to {args.out}")
    print(f"exact |{args.expression}| = {dataset.target_size:,} "
          f"(union {dataset.union_size:,})")
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    from repro.core.family import SketchSpec
    from repro.core.sketch import SketchShape
    from repro.streams.checkpoint import (
        checkpoint_engine,
        checkpoint_sharded_engine,
    )
    from repro.streams.engine import StreamEngine
    from repro.streams.sharded import ShardedEngine
    from repro.streams.sources import replay_into

    spec = SketchSpec(
        num_sketches=args.sketches,
        shape=SketchShape(
            domain_bits=args.domain_bits,
            num_second_level=args.second_level,
            independence=args.independence,
        ),
        seed=args.seed,
    )
    if args.shards < 1:
        print("--shards must be positive", file=sys.stderr)
        return 2
    progress = lambda n: print(f"  {n:,} updates ingested ...")  # noqa: E731
    if args.shards == 1:
        engine = StreamEngine(spec)
        count = replay_into(args.log, engine, progress=progress)
        checkpoint_engine(engine, args.checkpoint)
    else:
        with ShardedEngine(
            spec, num_shards=args.shards, executor=args.executor
        ) as engine:
            count = replay_into(args.log, engine, progress=progress)
            engine.flush()
            checkpoint_sharded_engine(engine, args.checkpoint)
            print(engine.stats().as_table())
            print(
                f"ingested {count:,} updates over streams "
                f"{', '.join(engine.stream_names())} across {args.shards} "
                f"{args.executor} shards; checkpoint at {args.checkpoint} "
                f"({engine.synopsis_bytes() / 1e6:.1f} MB of counters)"
            )
            return 0
    print(
        f"ingested {count:,} updates over streams "
        f"{', '.join(engine.stream_names())}; checkpoint at {args.checkpoint} "
        f"({engine.synopsis_bytes() / 1e6:.1f} MB of counters)"
    )
    return 0


def _command_query(args: argparse.Namespace) -> int:
    from repro.core.explain import explain_expression
    from repro.streams.checkpoint import restore_engine

    engine = restore_engine(args.checkpoint)
    for expression in args.expression:
        if args.explain:
            engine.flush()
            families = {
                name: engine.family(name) for name in engine.stream_names()
            }
            explanation = explain_expression(expression, families, args.epsilon)
            print(f"|{expression}| ≈ {explanation.estimate.value:,.0f}")
            print(explanation.as_table())
        else:
            estimate = engine.query(expression, args.epsilon)
            print(
                f"|{expression}| ≈ {estimate.value:,.0f}  "
                f"(û={estimate.union_estimate:,.0f}, "
                f"{estimate.num_witnesses}/{estimate.num_valid} witnesses)"
            )
    return 0


def _command_plan(args: argparse.Namespace) -> int:
    from repro.core.sizing import recommend_spec

    plan = recommend_spec(
        epsilon=args.epsilon,
        delta=args.delta,
        cardinality_ratio=args.ratio,
        num_streams=args.streams,
    )
    print(plan.describe())
    return 0


def _command_simplify(args: argparse.Namespace) -> int:
    from repro.expr.optimize import is_tautology, is_unsatisfiable, simplify
    from repro.expr.parser import parse
    from repro.expr.venn import cells_of_expression

    expression = parse(args.expression)
    print(f"parsed     : {expression.to_text()}")
    print(f"streams    : {', '.join(sorted(expression.streams()))}")
    cells = cells_of_expression(expression)
    print(f"venn cells : {len(cells)}")
    if is_unsatisfiable(expression):
        print("analysis   : unsatisfiable — |E| = 0 for every input")
    elif is_tautology(expression):
        print("analysis   : equals the union of its streams")
    print(f"simplified : {simplify(expression).to_text()}")
    return 0


def _command_exact(args: argparse.Namespace) -> int:
    from repro.streams.exact import ExactStreamStore
    from repro.streams.sources import replay_into

    store = ExactStreamStore()
    count = replay_into(args.log, store)
    print(f"replayed {count:,} updates over streams {', '.join(store.streams())}")
    for expression in args.expression:
        print(f"|{expression}| = {store.cardinality(expression):,}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.run_all import main as run_all_main

    argv = ["--scale", args.scale, "--out", str(args.out)]
    if args.figure:
        argv += ["--figure", *args.figure]
    return run_all_main(argv)


_COMMANDS = {
    "generate": _command_generate,
    "ingest": _command_ingest,
    "query": _command_query,
    "plan": _command_plan,
    "simplify": _command_simplify,
    "exact": _command_exact,
    "experiment": _command_experiment,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse arguments, dispatch to the subcommand."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
