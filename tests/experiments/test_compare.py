"""Unit tests for paper-vs-measured comparison."""

from __future__ import annotations

from repro.experiments.compare import check_anchors, to_csv
from repro.experiments.config import ExperimentConfig
from repro.experiments.reference import PAPER_ANCHORS
from repro.experiments.runner import SweepResult, SweepSeries


def synthetic_result(name="fig7a", sketch_counts=(256, 512), errors=(0.2, 0.08)):
    config = ExperimentConfig(
        name=name,
        title="synthetic",
        expression="A & B",
        union_size=1024,
        target_ratios=(0.5,),
        sketch_counts=sketch_counts,
        trials=1,
    )
    series = SweepSeries(
        target_ratio=0.5,
        target_size=512,
        sketch_counts=sketch_counts,
        errors=errors,
    )
    return SweepResult(config=config, series=(series,), elapsed_seconds=1.0)


class TestCheckAnchors:
    def test_holding_anchors(self):
        result = synthetic_result(errors=(0.2, 0.08))
        verdicts = check_anchors(result)
        assert verdicts  # fig7a has anchors
        assert all(v.holds for v in verdicts if v.holds is not None)

    def test_missing_anchor_detected(self):
        result = synthetic_result(errors=(0.9, 0.9))
        verdicts = check_anchors(result)
        assert any(v.holds is False for v in verdicts)

    def test_uncovered_sketch_count_skipped(self):
        result = synthetic_result(sketch_counts=(32, 64), errors=(0.5, 0.4))
        verdicts = check_anchors(result)
        assert all(v.holds is None for v in verdicts)
        assert all("SKIP" in v.describe() for v in verdicts)

    def test_worst_series_is_compared(self):
        config = ExperimentConfig(
            name="fig7a",
            title="synthetic",
            expression="A & B",
            union_size=1024,
            target_ratios=(0.5, 0.25),
            sketch_counts=(512,),
            trials=1,
        )
        good = SweepSeries(0.5, 512, (512,), (0.05,))
        bad = SweepSeries(0.25, 256, (512,), (0.5,))
        result = SweepResult(config=config, series=(good, bad), elapsed_seconds=1.0)
        verdicts = [v for v in check_anchors(result) if v.holds is not None]
        assert all(v.measured_max_error == 0.5 for v in verdicts)

    def test_unknown_figure_has_no_anchors(self):
        config = ExperimentConfig(
            name="custom", title="t", expression="A", union_size=8,
            target_ratios=(0.5,), sketch_counts=(8,), trials=1,
        )
        result = SweepResult(
            config=config,
            series=(SweepSeries(0.5, 4, (8,), (0.1,)),),
            elapsed_seconds=0.1,
        )
        assert check_anchors(result) == []

    def test_describe_mentions_claim(self):
        verdicts = check_anchors(synthetic_result())
        claims = {anchor.claim for anchor in PAPER_ANCHORS}
        for verdict in verdicts:
            assert any(claim in verdict.describe() for claim in claims)


class TestCsv:
    def test_header_and_rows(self):
        csv_text = to_csv(synthetic_result())
        lines = csv_text.strip().splitlines()
        assert lines[0] == "sketches,target_size,target_ratio,trimmed_error"
        assert len(lines) == 3
        assert lines[1].startswith("256,512,0.5,")

    def test_errors_formatted(self):
        csv_text = to_csv(synthetic_result(errors=(0.123456789, 0.1)))
        assert "0.123457" in csv_text
