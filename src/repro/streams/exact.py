"""Exact reference store for update streams.

:class:`ExactStreamStore` maintains the true net frequency of every element
of every stream — the ground truth that experiments and tests compare the
sketch estimates against.  It enforces the paper's legality assumption
(net frequencies never go negative) and answers exact set-expression
cardinalities via the expression AST.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Iterable

from repro.errors import IllegalDeletionError
from repro.expr.ast import SetExpression
from repro.expr.parser import parse
from repro.streams.updates import Update

__all__ = ["ExactStreamStore"]


class ExactStreamStore:
    """True net-frequency bookkeeping for a collection of update streams."""

    def __init__(self) -> None:
        self._frequencies: dict[str, Counter] = defaultdict(Counter)

    # -- maintenance ------------------------------------------------------

    def apply(self, update: Update) -> None:
        """Apply one update, enforcing deletion legality."""
        frequencies = self._frequencies[update.stream]
        new_frequency = frequencies[update.element] + update.delta
        if new_frequency < 0:
            raise IllegalDeletionError(
                f"deleting {-update.delta} of element {update.element} from "
                f"stream {update.stream!r} would leave net frequency "
                f"{new_frequency}"
            )
        if new_frequency == 0:
            del frequencies[update.element]
        else:
            frequencies[update.element] = new_frequency

    def apply_many(self, updates: Iterable[Update]) -> None:
        """Apply a sequence of updates in order."""
        for update in updates:
            self.apply(update)

    # -- queries -----------------------------------------------------------

    def streams(self) -> list[str]:
        """Identifiers of all streams that ever received an update."""
        return sorted(self._frequencies)

    def frequency(self, stream: str, element: int) -> int:
        """Net frequency of one element (0 if absent)."""
        return self._frequencies[stream][element]

    def distinct_set(self, stream: str) -> set[int]:
        """Elements with positive net frequency in ``stream``."""
        return set(self._frequencies[stream])

    def distinct_count(self, stream: str) -> int:
        """Number of elements with positive net frequency."""
        return len(self._frequencies[stream])

    def total_items(self, stream: str) -> int:
        """Sum of net frequencies (the multi-set's total size)."""
        return sum(self._frequencies[stream].values())

    def cardinality(self, expression: SetExpression | str) -> int:
        """Exact ``|E|`` — distinct elements with positive net frequency
        in the expression result."""
        if isinstance(expression, str):
            expression = parse(expression)
        sets = {name: self.distinct_set(name) for name in expression.streams()}
        return len(expression.evaluate(sets))
