"""Unit tests for sliding-window deletion drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.streams.engine import StreamEngine
from repro.streams.exact import ExactStreamStore
from repro.streams.updates import Update
from repro.streams.windows import SlidingWindowDriver

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=6)
SPEC = SketchSpec(num_sketches=64, shape=SHAPE, seed=21)


class TestWindowMechanics:
    def test_updates_forwarded(self):
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store)
        driver.observe(Update("A", 1, 1), at=0.0)
        assert store.distinct_set("A") == {1}

    def test_expiry_deletes(self):
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store)
        driver.observe(Update("A", 1, 1), at=0.0)
        driver.observe(Update("A", 2, 1), at=5.0)
        expired = driver.advance_to(10.0)
        assert expired == 1
        assert store.distinct_set("A") == {2}
        assert driver.in_window_count == 1

    def test_exclusive_expiry_bound(self):
        store = ExactStreamStore()
        driver = SlidingWindowDriver(10.0, store)
        driver.observe(Update("A", 1, 1), at=0.0)
        assert driver.advance_to(9.999) == 0
        assert driver.advance_to(10.0) == 1

    def test_time_must_not_go_backwards(self):
        driver = SlidingWindowDriver(10.0, ExactStreamStore())
        driver.observe(Update("A", 1, 1), at=5.0)
        with pytest.raises(ValueError):
            driver.observe(Update("A", 2, 1), at=4.0)
        with pytest.raises(ValueError):
            driver.advance_to(1.0)

    def test_multiple_sinks(self):
        store = ExactStreamStore()
        engine = StreamEngine(SPEC)
        driver = SlidingWindowDriver(10.0, engine, store)
        driver.observe(Update("A", 1, 1), at=0.0)
        driver.advance_to(20.0)
        engine.flush()
        assert store.distinct_count("A") == 0
        assert engine.family("A").is_empty()

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowDriver(0.0, ExactStreamStore())
        with pytest.raises(ValueError):
            SlidingWindowDriver(1.0)
        with pytest.raises(TypeError):
            SlidingWindowDriver(1.0, object())


class TestWindowedSketchSemantics:
    def test_windowed_sketch_equals_in_window_build(self):
        """After expiry, the engine's sketch must be identical to a fresh
        sketch over only the in-window elements — the whole point of
        deletion-invariance."""
        rng = np.random.default_rng(800)
        elements = rng.choice(2**20, size=600, replace=False)
        engine = StreamEngine(SPEC)
        driver = SlidingWindowDriver(100.0, engine)
        for tick, element in enumerate(elements):
            driver.observe(Update("A", int(element), 1), at=float(tick))
        # Clock is now 599; window [500, 599] keeps the last 100 ticks.
        driver.advance_to(599.0)
        engine.flush()

        fresh = SPEC.build()
        fresh.update_batch(elements[-100:])
        assert engine.family("A") == fresh

    def test_windowed_cardinality_query(self):
        rng = np.random.default_rng(801)
        elements = rng.choice(2**20, size=2000, replace=False)
        engine = StreamEngine(
            SketchSpec(num_sketches=128, shape=SHAPE, seed=3)
        )
        exact = ExactStreamStore()
        driver = SlidingWindowDriver(500.0, engine, exact)
        for tick, element in enumerate(elements):
            driver.observe(Update("A", int(element), 1), at=float(tick))
        estimate = engine.query_union(["A"], 0.2)
        truth = exact.distinct_count("A")
        assert truth == 500
        assert abs(estimate.value - truth) / truth < 0.4
