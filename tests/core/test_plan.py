"""Tests for the shared hash-plan layer (:mod:`repro.core.plan`).

The load-bearing property is *exactness*: plan-based maintenance must
leave counters bit-identical to the classic per-sketch path on any
workload, any shape, any cache configuration — the plan is a
reorganisation of identical integer arithmetic, never an approximation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.plan import (
    DEFAULT_CACHE_SIZE,
    STACKED_HASH_MAX,
    HashPlan,
    HashPlanStats,
    plan_for,
)
from repro.core.sketch import SketchShape
from repro.errors import DomainError, IncompatibleSketchesError

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=4)


def spec(num_sketches: int = 8, seed: int = 0, shape: SketchShape = SHAPE) -> SketchSpec:
    return SketchSpec(num_sketches=num_sketches, shape=shape, seed=seed)


def mixed_workload(rng, size: int, domain: int):
    """Skewed elements with insert/delete churn (hot head repeats)."""
    elements = (rng.zipf(1.3, size=size) - 1) % domain
    counts = rng.choice(np.asarray([-2, -1, 1, 1, 3], dtype=np.int64), size)
    return elements.astype(np.uint64), counts


class TestRowExactness:
    @pytest.mark.parametrize("n", [1, 10, 100, STACKED_HASH_MAX, STACKED_HASH_MAX + 1, 5000])
    def test_compute_rows_matches_per_sketch_hashing(self, n):
        """Stacked and per-sketch fill regimes produce identical rows."""
        s = spec(6, seed=3)
        plan = HashPlan(s.hashes(), s.shape, cache_size=0)
        rng = np.random.default_rng(n)
        elements = rng.integers(0, s.shape.domain_size, size=n, dtype=np.uint64)
        rows = plan.compute_rows(elements)

        shape = s.shape
        for k, hashes in enumerate(s.hashes()):
            from repro.hashing.lsb import lsb_array

            levels = lsb_array(hashes.first_level(elements))
            bits = hashes.second_level.bits(elements)  # (n, s)
            for j in range(shape.num_second_level):
                expected = (
                    (k * shape.num_levels + levels) * shape.num_second_level + j
                ) * 2 + bits[:, j]
                got = rows[:, k * shape.num_second_level + j]
                assert np.array_equal(got, expected)

    def test_cached_rows_equal_fresh_rows(self):
        s = spec(4, seed=9)
        plan = HashPlan(s.hashes(), s.shape, cache_size=64)
        rng = np.random.default_rng(1)
        elements = rng.integers(0, s.shape.domain_size, size=40, dtype=np.uint64)
        first = plan.scatter_rows(elements)
        second = plan.scatter_rows(elements)  # all hits now
        assert np.array_equal(first, second)
        assert plan.stats().hits >= elements.size  # second pass from cache


class TestMaintenanceEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n", [10, 1000, 5000])
    def test_update_batch_bit_identical(self, seed, n):
        """Randomised mixed insert/delete workloads, plan vs per-sketch."""
        s = spec(8, seed=seed)
        rng = np.random.default_rng(100 + seed)
        elements, counts = mixed_workload(rng, n, s.shape.domain_size)
        via_plan, via_sketch = s.build(), s.build()
        via_plan.update_batch(elements, counts, plan="auto")
        via_sketch.update_batch(elements, counts, plan=None)
        assert np.array_equal(via_plan.counters, via_sketch.counters)

    @pytest.mark.parametrize(
        "shape",
        [
            SketchShape(domain_bits=16, num_second_level=4, independence=4),
            SketchShape(domain_bits=24, num_second_level=16, independence=8),
        ],
    )
    def test_shapes_bit_identical(self, shape):
        s = spec(12, seed=5, shape=shape)
        rng = np.random.default_rng(7)
        elements, counts = mixed_workload(rng, 3000, shape.domain_size)
        via_plan, via_sketch = s.build(), s.build()
        via_plan.update_batch(elements, counts, plan="auto")
        via_sketch.update_batch(elements, counts, plan=None)
        assert np.array_equal(via_plan.counters, via_sketch.counters)

    @pytest.mark.parametrize("cache_size", [0, 16, DEFAULT_CACHE_SIZE])
    def test_cache_configurations_bit_identical(self, cache_size):
        """Cache off, tiny (evicting), and default all yield the same
        counters across repeated overlapping batches."""
        s = spec(6, seed=11)
        plan = HashPlan(s.hashes(), s.shape, cache_size=cache_size)
        rng = np.random.default_rng(13)
        via_plan, via_sketch = s.build(), s.build()
        for _ in range(5):
            elements, counts = mixed_workload(rng, 400, 1 << 10)  # overlap-heavy
            via_plan.update_batch(elements, counts, plan=plan)
            via_sketch.update_batch(elements, counts, plan=None)
        assert np.array_equal(via_plan.counters, via_sketch.counters)

    def test_unweighted_and_uniform_batches(self):
        s = spec(4, seed=2)
        rng = np.random.default_rng(3)
        elements = rng.integers(0, s.shape.domain_size, size=500, dtype=np.uint64)
        for counts in (None, np.full(500, -3, dtype=np.int64)):
            via_plan, via_sketch = s.build(), s.build()
            via_plan.update_batch(elements, counts, plan="auto")
            via_sketch.update_batch(elements, counts, plan=None)
            assert np.array_equal(via_plan.counters, via_sketch.counters)

    def test_scan_flood_bypass_still_exact(self):
        """A batch that trips the bypass heuristic must fall back to the
        per-sketch path, not drop updates."""
        s = spec(4, seed=21)
        plan = HashPlan(s.hashes(), s.shape, cache_size=32)
        rng = np.random.default_rng(22)
        elements = rng.permutation(s.shape.domain_size)[: STACKED_HASH_MAX + 500]
        elements = elements.astype(np.uint64)  # all distinct: a scan
        via_plan, via_sketch = s.build(), s.build()
        via_plan.update_batch(elements, plan=plan)
        via_sketch.update_batch(elements, plan=None)
        assert np.array_equal(via_plan.counters, via_sketch.counters)
        assert plan.stats().bypasses >= 1

    def test_ingest_batch_bit_identical(self):
        s = spec(8, seed=4)
        rng = np.random.default_rng(5)
        elements, counts = mixed_workload(rng, 4000, 1 << 12)
        via_plan, via_sketch = s.build(), s.build()
        applied_plan = via_plan.ingest_batch(elements, counts, plan="auto")
        applied_sketch = via_sketch.ingest_batch(elements, counts, plan=None)
        assert applied_plan == applied_sketch
        assert np.array_equal(via_plan.counters, via_sketch.counters)

    def test_engines_bit_identical_across_shards(self):
        """StreamEngine and ShardedEngine (plan on/off) all agree."""
        from repro.streams.engine import StreamEngine
        from repro.streams.sharded import ShardedEngine
        from repro.streams.updates import Update

        s = spec(8, seed=6)
        rng = np.random.default_rng(8)
        updates = [
            Update(f"S{int(which)}", int(element), int(delta))
            for which, (element, delta) in zip(
                rng.integers(0, 2, size=3000),
                zip(*mixed_workload(rng, 3000, 1 << 10)),
            )
        ]
        reference = StreamEngine(s, use_plan=False)
        reference.process_many(updates)
        reference.flush()
        planned = StreamEngine(s, use_plan=True)
        planned.process_many(updates)
        planned.flush()
        for num_shards in (1, 3):
            with ShardedEngine(
                s, num_shards=num_shards, batch_size=256, executor="serial"
            ) as sharded:
                sharded.process_many(updates)
                for name in reference.stream_names():
                    assert np.array_equal(
                        sharded.family(name).counters,
                        reference.family(name).counters,
                    )
        for name in reference.stream_names():
            assert np.array_equal(
                planned.family(name).counters, reference.family(name).counters
            )


class TestCacheIsolation:
    def test_cache_never_leaks_across_different_coins(self):
        """Two specs differing only in seed must see independent plans —
        and produce each its own correct counters even when their caches
        are exercised with the same elements, interleaved."""
        spec_a, spec_b = spec(6, seed=100), spec(6, seed=200)
        plan_a, plan_b = plan_for(spec_a), plan_for(spec_b)
        assert plan_a is not plan_b
        assert plan_for(spec_a) is plan_a  # memoised per spec

        rng = np.random.default_rng(9)
        elements = rng.integers(0, SHAPE.domain_size, size=300, dtype=np.uint64)
        fam_a, fam_b = spec_a.build(), spec_b.build()
        ref_a, ref_b = spec_a.build(), spec_b.build()
        for _ in range(3):  # interleave: same elements through both caches
            fam_a.update_batch(elements, plan="auto")
            fam_b.update_batch(elements, plan="auto")
            ref_a.update_batch(elements, plan=None)
            ref_b.update_batch(elements, plan=None)
        assert np.array_equal(fam_a.counters, ref_a.counters)
        assert np.array_equal(fam_b.counters, ref_b.counters)
        # Different coins ⇒ different rows for the same element.
        rows_a = plan_a.compute_rows(elements[:8])
        rows_b = plan_b.compute_rows(elements[:8])
        assert not np.array_equal(rows_a, rows_b)

    def test_equal_specs_share_one_plan(self):
        assert plan_for(spec(6, seed=300)) is plan_for(spec(6, seed=300))

    def test_foreign_plan_rejected(self):
        other = spec(6, seed=400)
        family = spec(6, seed=401).build()
        with pytest.raises(IncompatibleSketchesError):
            family.update_batch(
                np.asarray([1], dtype=np.uint64), plan=HashPlan(other.hashes(), other.shape)
            )


class TestPlanBehaviour:
    def test_domain_error_preserved(self):
        family = spec(4, seed=1).build()
        too_big = np.asarray([SHAPE.domain_size], dtype=np.uint64)
        with pytest.raises(DomainError):
            family.update_batch(too_big, plan="auto")
        with pytest.raises(DomainError):
            family.update_batch(too_big, plan=None)

    def test_bad_plan_string_rejected(self):
        family = spec(4, seed=1).build()
        with pytest.raises(ValueError):
            family.update_batch(np.asarray([1], dtype=np.uint64), plan="bogus")

    def test_lru_evicts_oldest(self):
        s = spec(2, seed=15)
        plan = HashPlan(s.hashes(), s.shape, cache_size=4)
        # Batches stay below capacity: a whole-capacity miss burst is
        # deliberately not inserted (anti-pollution guard).
        plan.scatter_rows(np.arange(3, dtype=np.uint64))
        plan.scatter_rows(np.asarray([3, 4], dtype=np.uint64))  # evicts 0
        stats = plan.stats()
        assert stats.evictions == 1
        assert stats.entries == 4
        plan.scatter_rows(np.asarray([0], dtype=np.uint64))  # 0 is a miss again
        assert plan.stats().misses == 6

    def test_stats_roundtrip_and_merge(self):
        stats = HashPlanStats(
            hits=3, misses=2, evictions=1, bypasses=1, entries=2,
            capacity=8, hash_seconds=0.5, scatter_seconds=0.25,
        )
        assert stats.lookups == 5
        assert stats.hit_rate == pytest.approx(0.6)
        again = HashPlanStats.from_json_dict(stats.to_json_dict())
        assert again == stats
        merged = stats.merged_with(again)
        assert merged.hits == 6 and merged.hash_seconds == pytest.approx(1.0)
        assert HashPlanStats().hit_rate == 0.0

    def test_clear_cache_and_reset_stats(self):
        s = spec(2, seed=16)
        plan = HashPlan(s.hashes(), s.shape, cache_size=16)
        plan.scatter_rows(np.arange(8, dtype=np.uint64))
        assert plan.stats().entries == 8
        plan.clear_cache()
        assert plan.stats().entries == 0
        plan.reset_stats()
        empty = plan.stats()
        assert empty.lookups == 0 and empty.hash_seconds == 0.0

    def test_validation(self):
        s = spec(2, seed=17)
        with pytest.raises(ValueError):
            HashPlan([], SHAPE)
        with pytest.raises(ValueError):
            HashPlan(s.hashes(), SHAPE, cache_size=-1)
        wrong_shape = SketchShape(domain_bits=20, num_second_level=4, independence=4)
        with pytest.raises(IncompatibleSketchesError):
            HashPlan(s.hashes(), wrong_shape)

    def test_threaded_sharing_stays_exact(self):
        """Concurrent families hammering one plan (the sharded-threads
        topology) must not corrupt cached rows."""
        from concurrent.futures import ThreadPoolExecutor

        s = spec(4, seed=18)
        plan = HashPlan(s.hashes(), s.shape, cache_size=64)  # tiny: evicts hard
        rng = np.random.default_rng(19)
        batches = [
            mixed_workload(np.random.default_rng(seed), 300, 1 << 8)
            for seed in range(12)
        ]
        families = [s.build() for _ in range(4)]
        references = [s.build() for _ in range(4)]

        def work(index):
            family = families[index]
            for elements, counts in batches:
                family.update_batch(elements, counts, plan=plan)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(work, range(4)))
        for reference in references:
            for elements, counts in batches:
                reference.update_batch(elements, counts, plan=None)
        for family, reference in zip(families, references):
            assert np.array_equal(family.counters, reference.counters)
