"""Update-stream processing substrate: data model, engine, exact store,
sources, checkpointing, and the distributed-sites model."""

from repro.streams.checkpoint import CheckpointError, checkpoint_engine, restore_engine
from repro.streams.continuous import (
    ContinuousQueryProcessor,
    Observation,
    StandingQuery,
)
from repro.streams.distributed import Coordinator, StreamSite
from repro.streams.engine import StreamEngine
from repro.streams.exact import ExactStreamStore
from repro.streams.sources import (
    UpdateLogError,
    load_updates,
    replay_into,
    save_updates,
)
from repro.streams.updates import Update, deletions, insertions, interleave
from repro.streams.windows import SlidingWindowDriver

__all__ = [
    "ContinuousQueryProcessor",
    "Observation",
    "StandingQuery",
    "CheckpointError",
    "checkpoint_engine",
    "restore_engine",
    "Coordinator",
    "StreamSite",
    "StreamEngine",
    "ExactStreamStore",
    "UpdateLogError",
    "load_updates",
    "replay_into",
    "save_updates",
    "Update",
    "deletions",
    "insertions",
    "interleave",
    "SlidingWindowDriver",
]
