"""Sliding-window semantics via deletions.

The paper's footnote treats modifications as deletion+insertion; the same
move turns its deletion-proof synopses into *sliding-window* synopses: as
items age out of the window, the source issues the inverse updates, and
the sketch — being deletion-invariant — ends up identical to a sketch
over only the in-window items.

Two implementations live here, one per side of the wire:

:class:`SlidingWindowDriver` is the **source side**: it forwards each
timestamped update to its sink(s) and remembers it; when time advances
past ``window_span``, it emits the inverse updates of everything that
fell out.  Memory is proportional to the number of *in-window* updates —
that state lives at the observing source (which sees its own traffic
anyway), not at the query processor, so the streaming model downstream is
untouched.

:class:`WindowRing` is the **processor side**: a ring of time-bucketed
synopses that needs no per-update memory at all.  Updates land in the
newest bucket; the in-window synopsis is the linear *sum* of the live
buckets, maintained incrementally; expiry is one vectorised subtraction
of the oldest bucket (deletions come free in this sketch — ageing out a
whole cohort is ``subtract_in_place`` of its synopsis).  Precision is
bucket-granular: buckets are the left-open intervals ``((b-1)·width,
b·width]``, so at every instant that is an exact multiple of the bucket
width the ring's window is *bit-identical* to a driver-fed flat sketch;
between boundaries the ring keeps the oldest bucket until it has fully
expired, over-covering by less than one bucket.

Feed either one **insert-only** observation streams ("items seen
recently").  Windowing a stream that itself contains deletions is
ill-defined for non-negative multiset semantics: expiring a deletion
emits an insertion, and the interleaving can transiently drive an
element's net in-window frequency negative (the sketch tolerates that;
the exact reference store — correctly — does not).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable, Iterator

from repro.core.family import SketchFamily, SketchSpec, sum_families
from repro.streams.updates import Update

__all__ = ["SlidingWindowDriver", "WindowRing", "check_window_config"]

_CLOCK_POLICIES = ("raise", "clamp")


class SlidingWindowDriver:
    """Maintains time-based sliding-window semantics over sinks.

    Parameters
    ----------
    window_span:
        Width of the window in the caller's time unit.  An update observed
        at time ``t`` expires as soon as the clock reaches ``t +
        window_span`` (exclusive bound: ``observe(..., at=0)`` with span 10
        is still in-window at ``advance_to(9)`` and gone at 10).
    sinks:
        Objects with ``process(update)`` or ``apply(update)``; every
        forwarded and inverse update goes to all of them.  Sinks that also
        expose a batch entry point (``process_many`` or ``apply_many``)
        receive each expiry cohort as **one batch per** ``advance_to``
        instead of per-update scalar calls, engaging the vectorised
        ingest path; per-sink update order is unchanged, so by sketch
        linearity the result is bit-identical to the scalar path.
    clock_policy:
        What to do with a non-monotonic clock.  The driver's correctness
        argument (expiry order equals observation order, so the deque
        head is always the oldest in-window update) needs a
        non-decreasing clock; a timestamp that silently moved it
        backwards — or a NaN, which every comparison answers False for,
        freezing expiry forever — would mis-expire updates with no
        error.  ``"raise"`` (the default) rejects any regressing or NaN
        timestamp with :class:`ValueError`.  ``"clamp"`` instead stamps
        late updates at the current watermark (they enter the window
        *now*, where they were observed, and expire a full span later)
        and treats a backwards ``advance_to`` as a no-op; NaN is always
        an error — there is no watermark it can mean.  Clamping is the
        policy for wall-clock sources with small skew (e.g. merged feeds
        from several machines), raising for logical/event time where a
        regression is a bug worth hearing about.
    """

    def __init__(
        self, window_span: float, *sinks, clock_policy: str = "raise"
    ) -> None:
        if window_span <= 0:
            raise ValueError("window_span must be positive")
        if not sinks:
            raise ValueError("need at least one sink")
        if clock_policy not in _CLOCK_POLICIES:
            raise ValueError("clock_policy must be 'raise' or 'clamp'")
        self.window_span = window_span
        self.clock_policy = clock_policy
        self._handlers = []
        self._batch_handlers = []
        for sink in sinks:
            handler = getattr(sink, "process", None) or getattr(sink, "apply", None)
            if handler is None:
                raise TypeError(
                    f"{type(sink).__name__} has no process()/apply() method"
                )
            self._handlers.append(handler)
            self._batch_handlers.append(
                getattr(sink, "process_many", None)
                or getattr(sink, "apply_many", None)
            )
        self._clock = float("-inf")
        self._in_window: deque[tuple[float, Update]] = deque()

    # -- ingest ---------------------------------------------------------------

    def observe(self, update: Update, at: float) -> None:
        """Forward one update observed at time ``at``.

        ``at`` must respect the configured ``clock_policy``: regressions
        raise by default, or are clamped to the current watermark (see
        the class docstring); NaN timestamps always raise.
        """
        at = self._checked_time(at)
        if at < self._clock:  # clamp policy: stamp at the watermark
            at = self._clock
        self.advance_to(at)
        self._emit(update)
        self._in_window.append((at, update))

    def observe_many(self, updates: Iterable[tuple[Update, float]]) -> int:
        """Observe a sequence of (update, timestamp) pairs.

        Returns the number of updates observed.  Emission is **partial
        on error**: each pair is forwarded to the sinks as it is
        consumed, so if a timestamp is rejected mid-iterable (a
        regression under ``clock_policy="raise"``, or NaN under either
        policy) the earlier pairs have already been emitted and remain
        in the window — the driver and its sinks stay mutually
        consistent.  The return value tells the caller exactly how far
        the iterable got; resume by re-observing from that offset.
        """
        observed = 0
        for update, at in updates:
            self.observe(update, at)
            observed += 1
        return observed

    def advance_to(self, now: float) -> int:
        """Move the clock forward, expiring everything out of window.

        Returns the number of updates expired.  A regressing ``now``
        raises or is ignored per ``clock_policy``; NaN always raises.
        The expiry cohort's inverse updates are emitted as one batch per
        sink (in observation order, so per-sink state is bit-identical
        to per-update emission); sinks without a batch entry point get
        scalar calls.
        """
        now = self._checked_time(now)
        if now < self._clock:  # clamp policy: backwards advance is a no-op
            return 0
        self._clock = now
        inverses: list[Update] = []
        while self._in_window and self._in_window[0][0] + self.window_span <= now:
            _, update = self._in_window.popleft()
            inverses.append(update.inverse())
        if inverses:
            self._emit_batch(inverses)
        return len(inverses)

    # -- introspection ---------------------------------------------------------

    @property
    def clock(self) -> float:
        return self._clock

    @property
    def in_window_count(self) -> int:
        """Number of updates currently inside the window."""
        return len(self._in_window)

    # -- internals -------------------------------------------------------------

    def _checked_time(self, value: float) -> float:
        """Validate a timestamp against the clock policy.

        NaN is rejected unconditionally: ``NaN < clock`` is False, so a
        NaN would slip past any ordering check, become the new watermark,
        and freeze expiry forever (every ``timestamp + span <= NaN``
        comparison is False too).
        """
        value = float(value)
        if math.isnan(value):
            raise ValueError("timestamps must not be NaN")
        if value < self._clock and self.clock_policy == "raise":
            raise ValueError(
                f"time went backwards: {value} after {self._clock}"
            )
        return value

    def _emit(self, update: Update) -> None:
        for handler in self._handlers:
            handler(update)

    def _emit_batch(self, updates: list[Update]) -> None:
        for handler, batch_handler in zip(self._handlers, self._batch_handlers):
            if batch_handler is not None:
                batch_handler(updates)
            else:
                for update in updates:
                    handler(update)


class WindowRing:
    """A ring of time-bucketed synopses for one stream.

    Time is split into the left-open bucket intervals ``((b-1)·width,
    b·width]`` — an update stamped exactly on a boundary belongs to the
    bucket *ending* there.  With ``span = k·width``, at any boundary
    instant ``m·width`` the live buckets ``m-k+1 .. m`` cover exactly
    the driver's window ``(m·width - span, m·width]``: no bucket is ever
    partially expired at a boundary, which is what makes the ring
    bit-identical to a :class:`SlidingWindowDriver`-fed flat sketch
    there.  Between boundaries the oldest bucket is kept until the clock
    reaches its full-expiry instant ``(b+k)·width``, so the ring
    over-covers by less than one bucket width.

    The in-window synopsis is maintained incrementally: every ingest
    batch is applied to both the newest bucket and the window total
    (same exact per-level dirty marking as a flat family, so cached
    windowed estimates revalidate identically), and expiry of a
    non-empty bucket is one ``subtract_in_place``.  Expiring an
    all-zero bucket touches nothing — the window total's version is
    unchanged and downstream caches revalidate in O(streams).

    Sub-window queries at bucket granularity come free: ``family(window
    = j·width)`` sums the newest ``j`` buckets, memoised per ``j`` and
    rebuilt in place only when the member buckets change.
    """

    def __init__(
        self,
        spec: SketchSpec,
        window_span: float,
        bucket_width: float | None = None,
        *,
        clock_policy: str = "raise",
    ) -> None:
        self.window_span, self.bucket_width, self.num_buckets = check_window_config(
            window_span, bucket_width
        )
        if clock_policy not in _CLOCK_POLICIES:
            raise ValueError("clock_policy must be 'raise' or 'clamp'")
        self.spec = spec
        self.clock_policy = clock_policy
        self._clock = float("-inf")
        self._current: int | None = None  # newest bucket index
        self._buckets: dict[int, SketchFamily] = {}
        self._window = spec.build()  # maintained sum of the live buckets
        self._pending_elements: list[int] = []
        self._pending_counts: list[int] = []
        self._pending_bucket: int | None = None
        # j (bucket count) -> (family, ((bucket, version), ...)) memo
        self._sub_windows: dict[int, tuple[SketchFamily, tuple]] = {}
        self.rotations = 0
        self.buckets_expired = 0
        self.empty_expiries = 0
        self.subwindow_rebuilds = 0

    # -- ingest ---------------------------------------------------------------

    def observe(self, element: int, count: int, at: float) -> None:
        """Buffer one update stamped ``at`` into its bucket.

        Timestamps follow ``clock_policy`` exactly like the driver:
        regressions raise or clamp to the watermark, NaN always raises.
        """
        at = self._checked_time(at)
        if at < self._clock:  # clamp policy: stamp at the watermark
            at = self._clock
        self._advance(at)
        bucket = self._bucket_of(at)
        if self._pending_bucket is not None and self._pending_bucket != bucket:
            self.flush()
        self._pending_bucket = bucket
        self._pending_elements.append(element)
        self._pending_counts.append(count)

    def advance_to(self, now: float) -> int:
        """Move the clock forward; returns the number of buckets expired."""
        now = self._checked_time(now)
        if now < self._clock:  # clamp policy: backwards advance is a no-op
            return 0
        return self._advance(now)

    def flush(self) -> None:
        """Apply buffered updates to their bucket and the window total."""
        if not self._pending_elements:
            return
        bucket = self._pending_bucket
        family = self._buckets.get(bucket)
        if family is None:
            family = self._buckets[bucket] = self.spec.build()
        family.ingest_batch(self._pending_elements, self._pending_counts)
        self._window.ingest_batch(self._pending_elements, self._pending_counts)
        self._pending_elements = []
        self._pending_counts = []
        self._pending_bucket = None

    def merge_at(self, delta: SketchFamily, at: float) -> bool:
        """Fold a delta synopsis attributed to instant ``at`` (federation).

        Advances the clock if ``at`` is ahead of it.  A *late* delta is
        not an error here (site skew is expected at a fold point): it
        lands in its true bucket if that bucket is still live, and is
        skipped — returning ``False`` — if the bucket has already
        expired, which is exactly the window semantics: those updates
        are out of window.  The caller folds the delta into its all-time
        synopsis regardless.
        """
        at = float(at)
        if math.isnan(at):
            raise ValueError("timestamps must not be NaN")
        if at > self._clock:
            self._advance(at)
        bucket = self._bucket_of(at)
        if bucket <= self._expiry_threshold():
            return False
        self.flush()
        family = self._buckets.get(bucket)
        if family is None:
            family = self._buckets[bucket] = self.spec.build()
        family.merge_in_place(delta)
        self._window.merge_in_place(delta)
        return True

    # -- queries ---------------------------------------------------------------

    def family(self, window: float | None = None) -> SketchFamily:
        """The in-window synopsis (optionally for a narrower sub-window).

        ``window`` must be a whole number of bucket widths in ``(0,
        window_span]``; ``None`` means the full span.  The full-span
        family is the incrementally maintained total; sub-window
        families are memoised per width and rebuilt (in place, bumping
        their version) only when their member buckets changed, so
        callers can cache results against the returned family's version
        exactly as they would against a flat family.
        """
        self.flush()
        if window is None:
            return self._window
        j = self.check_window(window)
        if j == self.num_buckets:
            return self._window
        members = []
        if self._current is not None:
            members = [
                b
                for b in range(self._current - j + 1, self._current + 1)
                if b in self._buckets
            ]
        signature = tuple((b, self._buckets[b].version) for b in members)
        cached = self._sub_windows.get(j)
        if cached is not None and cached[1] == signature:
            return cached[0]
        family = cached[0] if cached is not None else self.spec.build()
        if members:
            sum_families([self._buckets[b] for b in members], out=family)
        else:
            family.counters[:] = 0
            family.refresh_aggregates()
        self.subwindow_rebuilds += 1
        self._sub_windows[j] = (family, signature)
        return family

    def check_window(self, window: float) -> int:
        """Validate a query window; returns its width in buckets."""
        window = float(window)
        if not window > 0:
            raise ValueError("window must be positive")
        if window > self.window_span + 1e-9:
            raise ValueError(
                f"window {window} exceeds the ring's span {self.window_span}"
            )
        buckets = window / self.bucket_width
        rounded = round(buckets)
        if rounded < 1 or abs(buckets - rounded) > 1e-9:
            raise ValueError(
                f"window {window} is not a whole number of bucket widths "
                f"({self.bucket_width})"
            )
        return rounded

    # -- introspection ---------------------------------------------------------

    @property
    def clock(self) -> float:
        return self._clock

    @property
    def current_bucket(self) -> int | None:
        """Index of the bucket currently absorbing ingest."""
        return self._current

    def live_buckets(self) -> list[int]:
        """Indices of materialised (non-expired) buckets, oldest first."""
        return sorted(self._buckets)

    def bucket(self, index: int) -> SketchFamily:
        """The synopsis of one live bucket (KeyError if not materialised)."""
        return self._buckets[index]

    # -- checkpoint ------------------------------------------------------------

    def state_meta(self) -> dict:
        """JSON-safe ring metadata for a checkpoint manifest.

        Bucket payloads travel separately (see :meth:`bucket_payloads`);
        the window total is rebuilt by summation on restore.
        """
        self.flush()
        return {
            "clock": None if self._clock == float("-inf") else self._clock,
            "buckets": [b for b in sorted(self._buckets)],
        }

    def bucket_payloads(self) -> Iterator[tuple[int, bytes]]:
        """``(bucket_index, counter_payload)`` for each non-zero live bucket."""
        self.flush()
        for index in sorted(self._buckets):
            family = self._buckets[index]
            if not family.is_zero():
                yield index, family.to_bytes()

    @classmethod
    def restore(
        cls,
        spec: SketchSpec,
        window_span: float,
        bucket_width: float | None,
        clock: float | None,
        buckets: dict[int, SketchFamily],
        *,
        clock_policy: str = "raise",
    ) -> "WindowRing":
        """Rebuild a ring from checkpointed state.

        The window total is recomputed as the sum of the restored
        buckets — by linearity, bit-identical to the total at
        checkpoint time.
        """
        ring = cls(spec, window_span, bucket_width, clock_policy=clock_policy)
        if clock is not None:
            ring._clock = float(clock)
            ring._current = ring._bucket_of(ring._clock)
            threshold = ring._expiry_threshold()
            for index, family in buckets.items():
                if index > threshold:
                    ring._buckets[int(index)] = family
            if ring._buckets:
                sum_families(
                    [ring._buckets[b] for b in sorted(ring._buckets)],
                    out=ring._window,
                )
        return ring

    # -- internals -------------------------------------------------------------

    def _bucket_of(self, at: float) -> int:
        return math.ceil(at / self.bucket_width)

    def _expiry_threshold(self) -> int:
        """Largest bucket index that is fully expired at the current clock.

        Bucket ``b`` covers ``((b-1)·width, b·width]`` and its youngest
        possible update expires at ``b·width + span = (b+k)·width``, so
        the bucket is dropped once ``clock >= (b+k)·width``.
        """
        if self._clock == float("-inf"):
            return -(2**62)
        return math.floor(self._clock / self.bucket_width) - self.num_buckets

    def _advance(self, now: float) -> int:
        if now <= self._clock:
            return 0
        self._clock = now
        new_bucket = self._bucket_of(now)
        if self._current is not None and new_bucket != self._current:
            self.rotations += 1
        self._current = new_bucket
        if self._pending_bucket is not None and self._pending_bucket != new_bucket:
            self.flush()
        threshold = self._expiry_threshold()
        expired = 0
        for index in sorted(self._buckets):
            if index > threshold:
                break
            family = self._buckets.pop(index)
            expired += 1
            self.buckets_expired += 1
            if family.is_zero():
                # Nothing to subtract: the window total's version is
                # untouched, so cached windowed estimates revalidate
                # instead of recomputing.
                self.empty_expiries += 1
            else:
                self._window.subtract_in_place(family)
        return expired

    def _checked_time(self, value: float) -> float:
        value = float(value)
        if math.isnan(value):
            raise ValueError("timestamps must not be NaN")
        if value < self._clock and self.clock_policy == "raise":
            raise ValueError(
                f"time went backwards: {value} after {self._clock}"
            )
        return value


def check_window_config(
    window_span: float, bucket_width: float | None
) -> tuple[float, float, int]:
    """Validate a (span, width) pair; returns ``(span, width, num_buckets)``.

    ``bucket_width`` defaults to the span (a single tumbling bucket) and
    must divide the span into a whole number of buckets.
    """
    window_span = float(window_span)
    if not window_span > 0:
        raise ValueError("window_span must be positive")
    if bucket_width is None:
        bucket_width = window_span
    bucket_width = float(bucket_width)
    if not bucket_width > 0:
        raise ValueError("bucket_width must be positive")
    buckets = window_span / bucket_width
    num_buckets = round(buckets)
    if num_buckets < 1 or abs(buckets - num_buckets) > 1e-9:
        raise ValueError(
            f"window_span {window_span} is not a whole number of bucket "
            f"widths ({bucket_width})"
        )
    return window_span, bucket_width, num_buckets
