"""Continuous-query bench: per-tick evaluation latency, cold vs incremental.

The scenario is the paper's Figure-1 loop as a monitoring fleet: N
standing set-expression queries watch eight pairs of update streams
(``A``/``B`` through ``O``/``P``), and each tick a batch of updates
arrives from *one* pair — the usual shape of continuous monitoring,
where any given burst touches a few sources while every registered
query must stay current.  Sketch parameters follow the paper's sizing
(``r = Θ(1/ε²)`` parallel sketches), so per-query work is real rather
than numpy-call overhead.

Each tick the same updates are fed to twin engines and all N queries
are evaluated three ways (interleaved per tick, so machine noise hits
every path alike; per-tick latencies are summarised by the median):

* **cold** — the pre-incremental behaviour this change replaced: every
  query re-derives each participating family's level totals from the
  raw ``(r, levels, s, 2)`` counter slab, then runs its own union
  estimate and witness scan, every tick;
* **nocache** — ``use_cache=False`` on maintained aggregates: still one
  union estimate + one witness scan per query per tick, but level
  totals come from the incrementally maintained ``(r, levels)``
  aggregates;
* **incremental** — the engine's shared-tick path
  (``engine.query_many``): queries over untouched stream pairs are
  served by O(streams) version revalidation (their consulted sketch
  levels are provably clean, so the stored result is bit-identical to a
  recompute), and the queries that do need recomputing are grouped by
  stream set so the union estimate and singleton/non-emptiness masks
  are computed once per group with one compiled Boolean program
  evaluated per query.

Every tick all three paths are asserted **bit-identical** before any
timing is trusted — which also re-verifies that the maintained
aggregates match a recomputation from raw counters.  Results
(latencies, speedups, and the engine's hit/revalidation counters) land
in ``BENCH_query.json``.

``--smoke`` runs a reduced matrix with the same assertions for CI.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

import numpy as np

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.expr.parser import parse
from repro.streams.engine import StreamEngine
from repro.streams.updates import Update

STREAM_PAIRS = (
    ("A", "B"),
    ("C", "D"),
    ("E", "F"),
    ("G", "H"),
    ("I", "J"),
    ("K", "L"),
    ("M", "N"),
    ("O", "P"),
)

# One template per "dashboard panel"; query i watches pair i % 8 with
# template i // 8, so any prefix of the list spreads across the pairs.
TEMPLATES = (
    "{x} & {y}",
    "{x} - {y}",
    "{y} - {x}",
    "({x} - {y}) | ({y} - {x})",
)


def standing_queries(num_queries: int) -> list:
    expressions = []
    for index in range(num_queries):
        x, y = STREAM_PAIRS[index % len(STREAM_PAIRS)]
        template = TEMPLATES[(index // len(STREAM_PAIRS)) % len(TEMPLATES)]
        expressions.append(parse(template.format(x=x, y=y)))
    return expressions


def build_engine(num_sketches: int, num_second_level: int, seed: int) -> StreamEngine:
    shape = SketchShape(
        domain_bits=20, num_second_level=num_second_level, independence=6
    )
    spec = SketchSpec(num_sketches=num_sketches, shape=shape, seed=seed)
    return StreamEngine(spec, batch_size=65536)


def run_bench(
    query_counts: tuple[int, ...],
    num_ticks: int,
    updates_per_tick: int,
    num_sketches: int,
    num_second_level: int,
    epsilon: float = 0.1,
    seed: int = 7,
) -> dict:
    report: dict = {
        "num_ticks": num_ticks,
        "updates_per_tick": updates_per_tick,
        "num_sketches": num_sketches,
        "num_second_level": num_second_level,
        "epsilon": epsilon,
        "runs": [],
    }
    all_streams = [name for pair in STREAM_PAIRS for name in pair]
    for num_queries in query_counts:
        expressions = standing_queries(num_queries)
        engines = []
        for _ in range(2):  # twin engines: one per measured path
            engine = build_engine(num_sketches, num_second_level, seed)
            rng = np.random.default_rng(seed)
            # Pre-load every stream so no query starts from an empty union,
            # then warm the fleet once: standing queries are long-lived, so
            # the timed ticks measure steady state, not first evaluation.
            for index, element in enumerate(
                rng.integers(0, 2**20, size=1000 * len(all_streams))
            ):
                engine.process(
                    Update(all_streams[index % len(all_streams)], int(element), 1)
                )
            engine.flush()
            engine.query_many(expressions, epsilon)
            engines.append(engine)
        incr_engine, cold_engine = engines

        rng = np.random.default_rng(seed + 1)
        incr_ticks: list[float] = []
        nocache_ticks: list[float] = []
        cold_ticks: list[float] = []
        stats_before = incr_engine.query_stats()
        for tick in range(num_ticks):
            # This tick's burst arrives from one stream pair.
            pair = STREAM_PAIRS[tick % len(STREAM_PAIRS)]
            for index, element in enumerate(
                rng.integers(0, 2**20, size=updates_per_tick)
            ):
                update = Update(pair[index % 2], int(element), 1)
                incr_engine.process(update)
                cold_engine.process(update)
            incr_engine.flush()
            cold_engine.flush()

            started = time.perf_counter()
            incremental = incr_engine.query_many(expressions, epsilon)
            incr_ticks.append(time.perf_counter() - started)

            started = time.perf_counter()
            nocache = [
                cold_engine.query(expression, epsilon, use_cache=False)
                for expression in expressions
            ]
            nocache_ticks.append(time.perf_counter() - started)

            # Pre-change behaviour: level totals re-derived from the raw
            # counter slabs on every query (refresh_aggregates performs
            # exactly that recomputation).
            started = time.perf_counter()
            cold = []
            for expression in expressions:
                for name in sorted(expression.streams()):
                    cold_engine.family(name).refresh_aggregates()
                cold.append(
                    cold_engine.query(expression, epsilon, use_cache=False)
                )
            cold_ticks.append(time.perf_counter() - started)

            assert incremental == nocache == cold, (
                "incremental tick diverged from cold recompute"
            )
            # Re-asking within the tick is the steady-state standing-query
            # case: everything serves from the cache, identically.
            again = incr_engine.query_many(expressions, epsilon)
            for before, after in zip(incremental, again):
                assert after is before
        stats = incr_engine.query_stats()
        incr_ms = 1000.0 * statistics.median(incr_ticks)
        nocache_ms = 1000.0 * statistics.median(nocache_ticks)
        cold_ms = 1000.0 * statistics.median(cold_ticks)
        report["runs"].append(
            {
                "standing_queries": num_queries,
                "cold_ms_per_tick": cold_ms,
                "nocache_ms_per_tick": nocache_ms,
                "incremental_ms_per_tick": incr_ms,
                "speedup": cold_ms / incr_ms,
                "speedup_vs_nocache": nocache_ms / incr_ms,
                "cache_hits": stats.cache_hits - stats_before.cache_hits,
                "revalidations": stats.revalidations
                - stats_before.revalidations,
                "recomputes": stats.recomputes - stats_before.recomputes,
                "batch_groups": stats.batch_groups
                - stats_before.batch_groups,
                "union_recomputes": stats.union_recomputes
                - stats_before.union_recomputes,
            }
        )
    return report


def print_report(report: dict) -> None:
    print(
        f"\n{report['num_ticks']} ticks x {report['updates_per_tick']:,} "
        f"updates (one stream pair per tick), r={report['num_sketches']}, "
        f"s={report['num_second_level']}, eps={report['epsilon']}"
    )
    print(
        "queries  cold ms  nocache ms  incr ms  speedup  vs-nocache  "
        "revals  recomputes"
    )
    for run in report["runs"]:
        print(
            f"{run['standing_queries']:<8d} "
            f"{run['cold_ms_per_tick']:<8.3f} "
            f"{run['nocache_ms_per_tick']:<11.3f} "
            f"{run['incremental_ms_per_tick']:<8.3f} "
            f"{run['speedup']:<8.1f} "
            f"{run['speedup_vs_nocache']:<11.1f} "
            f"{run['revalidations']:<7d} {run['recomputes']}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="continuous-query tick latency: cold vs incremental"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced matrix with the same bit-identity assertions (CI)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_query.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_bench(
            query_counts=(1, 4, 8),
            num_ticks=6,
            updates_per_tick=100,
            num_sketches=64,
            num_second_level=8,
        )
    else:
        report = run_bench(
            query_counts=(1, 2, 4, 8, 16),
            num_ticks=24,
            updates_per_tick=200,
            num_sketches=256,
            num_second_level=16,
        )
    report["smoke"] = args.smoke
    print_report(report)

    by_count = {run["standing_queries"]: run for run in report["runs"]}
    if 8 in by_count and not args.smoke:
        assert by_count[8]["speedup"] >= 5.0, (
            "shared-tick evaluation fell below the 5x bar at 8 queries: "
            f"{by_count[8]['speedup']:.1f}x"
        )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
