"""Unit tests for the insert-only bitmap synopsis variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitmap import BitmapFamily
from repro.core.difference import estimate_difference
from repro.core.expression import estimate_expression
from repro.core.family import SketchSpec
from repro.core.intersection import estimate_intersection
from repro.core.sketch import SketchShape
from repro.core.union import estimate_union
from repro.errors import DomainError, IllegalDeletionError

SHAPE = SketchShape(domain_bits=22, num_second_level=8, independence=6)
SPEC = SketchSpec(num_sketches=128, shape=SHAPE, seed=44)


def populated_pair():
    rng = np.random.default_rng(1000)
    pool = rng.choice(2**22, size=3000, replace=False).astype(np.uint64)
    full_a, full_b = SPEC.build(), SPEC.build()
    full_a.update_batch(pool[:2000])
    full_b.update_batch(pool[1000:])
    return full_a, full_b, pool


class TestConstruction:
    def test_direct_build_matches_compression(self):
        full_a, _, pool = populated_pair()
        direct = BitmapFamily(SPEC)
        direct.update_batch(pool[:2000])
        assert direct == BitmapFamily.from_family(full_a)

    def test_memory_is_one_eighth(self):
        full_a, _, _ = populated_pair()
        bitmap = BitmapFamily.from_family(full_a)
        assert bitmap.memory_bytes * 8 == full_a.counters.nbytes

    def test_duplicates_and_multiplicities_equalised(self):
        bitmap_once = BitmapFamily(SPEC)
        bitmap_many = BitmapFamily(SPEC)
        elements = np.arange(100, dtype=np.uint64)
        bitmap_once.update_batch(elements)
        bitmap_many.update_batch(elements, np.full(100, 5))
        bitmap_many.update_batch(elements)
        assert bitmap_once == bitmap_many

    def test_is_empty(self):
        bitmap = BitmapFamily(SPEC)
        assert bitmap.is_empty()
        bitmap.update(1)
        assert not bitmap.is_empty()


class TestEstimateParity:
    """For insert-only streams, bitmap estimates must equal the counter
    family's estimates exactly — every check is occupancy-based."""

    def test_union_parity(self):
        full_a, full_b, _ = populated_pair()
        bitmap_a = BitmapFamily.from_family(full_a)
        bitmap_b = BitmapFamily.from_family(full_b)
        full = estimate_union([full_a, full_b], 0.1)
        compact = estimate_union([bitmap_a, bitmap_b], 0.1)
        assert compact.value == full.value
        assert compact.level == full.level

    def test_intersection_parity(self):
        full_a, full_b, _ = populated_pair()
        bitmap_a = BitmapFamily.from_family(full_a)
        bitmap_b = BitmapFamily.from_family(full_b)
        full = estimate_intersection(full_a, full_b, 0.1)
        compact = estimate_intersection(bitmap_a, bitmap_b, 0.1)
        assert compact.value == full.value
        assert compact.num_valid == full.num_valid
        assert compact.num_witnesses == full.num_witnesses

    def test_difference_parity(self):
        full_a, full_b, _ = populated_pair()
        bitmap_a = BitmapFamily.from_family(full_a)
        bitmap_b = BitmapFamily.from_family(full_b)
        full = estimate_difference(full_a, full_b, 0.1)
        compact = estimate_difference(bitmap_a, bitmap_b, 0.1)
        assert compact.value == full.value

    def test_expression_parity_with_pooling(self):
        full_a, full_b, _ = populated_pair()
        families_full = {"A": full_a, "B": full_b}
        families_bitmap = {
            "A": BitmapFamily.from_family(full_a),
            "B": BitmapFamily.from_family(full_b),
        }
        full = estimate_expression("A - B", families_full, 0.1, pool_levels=4)
        compact = estimate_expression("A - B", families_bitmap, 0.1, pool_levels=4)
        assert compact.value == full.value

    def test_prefix_parity(self):
        full_a, full_b, _ = populated_pair()
        bitmap_a = BitmapFamily.from_family(full_a)
        bitmap_b = BitmapFamily.from_family(full_b)
        full = estimate_intersection(full_a.prefix(32), full_b.prefix(32), 0.1)
        compact = estimate_intersection(bitmap_a.prefix(32), bitmap_b.prefix(32), 0.1)
        assert compact.value == full.value


class TestSerialisation:
    def test_roundtrip(self):
        full_a, _, _ = populated_pair()
        bitmap = BitmapFamily.from_family(full_a)
        restored = BitmapFamily.from_bytes(bitmap.to_bytes(), SPEC)
        assert restored == bitmap

    def test_payload_is_64x_smaller_than_counters(self):
        full_a, _, _ = populated_pair()
        bitmap = BitmapFamily.from_family(full_a)
        assert len(bitmap.to_bytes()) * 64 <= full_a.counters.nbytes

    def test_wrong_length_rejected(self):
        from repro.errors import IncompatibleSketchesError

        with pytest.raises(IncompatibleSketchesError):
            BitmapFamily.from_bytes(b"\x00", SPEC)

    def test_restored_is_writable(self):
        bitmap = BitmapFamily(SPEC)
        bitmap.update(1)
        restored = BitmapFamily.from_bytes(bitmap.to_bytes(), SPEC)
        restored.update(2)


class TestInsertOnlyEnforcement:
    def test_scalar_deletion_rejected(self):
        bitmap = BitmapFamily(SPEC)
        bitmap.update(1)
        with pytest.raises(IllegalDeletionError):
            bitmap.update(1, -1)

    def test_batch_deletion_rejected(self):
        bitmap = BitmapFamily(SPEC)
        with pytest.raises(IllegalDeletionError):
            bitmap.update_batch(np.asarray([1, 2]), np.asarray([1, -1]))

    def test_domain_enforced(self):
        bitmap = BitmapFamily(SPEC)
        with pytest.raises(DomainError):
            bitmap.update_batch(np.asarray([2**22], dtype=np.uint64))

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(BitmapFamily(SPEC))

    def test_prefix_bounds(self):
        bitmap = BitmapFamily(SPEC)
        with pytest.raises(ValueError):
            bitmap.prefix(0)
