"""Accuracy metrics used by the experimental study (Section 5.1).

The paper gauges estimators with the absolute relative error
``|ê − |E|| / |E||`` and reports, per configuration, the average over
repeated trials *after trimming away the 30% highest errors* — a robust
mean that damps the heavy upper tail of a randomised estimator.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["relative_error", "trimmed_mean_error", "TRIM_FRACTION"]

#: Fraction of the highest errors discarded before averaging (paper §5.1).
TRIM_FRACTION = 0.3


def relative_error(estimate: float, truth: float) -> float:
    """Absolute relative error ``|estimate − truth| / truth``.

    A zero truth is meaningful for set expressions (the result can be
    empty): the error is 0 when the estimate is also 0 and ``inf``
    otherwise.
    """
    if truth == 0:
        return 0.0 if estimate == 0 else math.inf
    return abs(estimate - truth) / abs(truth)


def trimmed_mean_error(
    errors: Iterable[float], trim_fraction: float = TRIM_FRACTION
) -> float:
    """The paper's trimmed-average error: drop the worst ``trim_fraction``
    of the observations, average the rest.

    At least one observation always survives the trim.
    """
    if not (0.0 <= trim_fraction < 1.0):
        raise ValueError("trim_fraction must lie in [0, 1)")
    ordered = sorted(errors)
    if not ordered:
        raise ValueError("need at least one error observation")
    keep = max(1, len(ordered) - int(len(ordered) * trim_fraction))
    kept = ordered[:keep]
    return sum(kept) / len(kept)
