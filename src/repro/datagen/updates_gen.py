"""Update-stream generation: turning element sets into insert/delete traffic.

The sketch is deletion-invariant, so the accuracy experiments feed it
insert-only data (exactly as the paper does).  The generators here build
*general* update streams for the robustness experiments: phantom elements
that are inserted and later fully deleted, duplicated insertions with
partial deletions, and random interleavings — traffic under which the
final sketch state must equal the insert-only sketch of the surviving
elements.
"""

from __future__ import annotations

import numpy as np

from repro.streams.updates import Update, insertions, interleave

__all__ = ["with_phantom_deletions", "multiset_updates"]


def with_phantom_deletions(
    stream: str,
    elements: np.ndarray,
    rng: np.random.Generator,
    phantom_fraction: float = 0.5,
    domain_bits: int = 30,
) -> list[Update]:
    """An update sequence whose net effect is inserting ``elements`` once.

    In addition to the real insertions, a batch of *phantom* elements
    (``phantom_fraction`` times as many, drawn fresh from the domain) is
    inserted and then fully deleted, with the deletions interleaved
    randomly after each phantom's insertion.  The resulting stream
    exercises the deletion path heavily while leaving the net multiset
    equal to ``elements``.

    Phantoms are drawn from the domain at random, so with a sparse domain
    they are almost surely distinct from the real elements — and even on
    collision the sequence stays legal (insert before delete) and the net
    effect of the phantom pair is nil.
    """
    if not (0.0 <= phantom_fraction):
        raise ValueError("phantom_fraction must be non-negative")
    real = insertions(stream, (int(e) for e in elements))
    num_phantoms = int(len(real) * phantom_fraction)
    if num_phantoms == 0:
        return real
    domain = 1 << domain_bits
    phantoms = rng.integers(0, domain, size=num_phantoms, dtype=np.uint64)
    phantom_pairs: list[Update] = []
    for phantom in phantoms:
        phantom_pairs.append(Update(stream, int(phantom), +1))
        phantom_pairs.append(Update(stream, int(phantom), -1))
    # Interleaving keeps each sequence's internal order, so every phantom's
    # insertion precedes its deletion: the merged stream is legal.
    return list(interleave([real, phantom_pairs], rng))


def multiset_updates(
    stream: str,
    elements: np.ndarray,
    rng: np.random.Generator,
    max_multiplicity: int = 4,
) -> list[Update]:
    """Updates giving each element a random positive net frequency.

    Each element receives a frequency in ``[1, max_multiplicity]``,
    delivered as an insertion of ``frequency + extra`` copies followed by
    a deletion of the ``extra`` surplus — so both signs of update appear
    while every element survives with positive net frequency (cardinality
    ground truth is unchanged).
    """
    if max_multiplicity < 1:
        raise ValueError("max_multiplicity must be at least 1")
    updates: list[Update] = []
    frequencies = rng.integers(1, max_multiplicity + 1, size=len(elements))
    extras = rng.integers(0, max_multiplicity + 1, size=len(elements))
    for element, frequency, extra in zip(elements, frequencies, extras):
        updates.append(Update(stream, int(element), int(frequency + extra)))
        if extra:
            updates.append(Update(stream, int(element), -int(extra)))
    return updates
