"""Tenant isolation, rate limiting, and the parse-once plan cache.

The serving contracts under test (ISSUE-10 satellite 3):

- a tenant over its token budget gets a **typed**
  :class:`~repro.errors.RateLimitedError` with a ``retry_after`` hint —
  never a hang, never a dropped connection;
- two tenants issuing the same expression text share exactly one
  compiled :class:`~repro.streams.serving.ServingPlan` (one parse) but
  **not** cache entries: each namespace gets its own resolved physical
  expression and its own engine-side estimates.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.errors import RateLimitedError, UnknownStreamError
from repro.streams.engine import StreamEngine
from repro.streams.serving import (
    PlanCache,
    QueryClient,
    QueryServer,
    TenantSpec,
    TokenBucket,
)
from repro.streams.updates import Update

SHAPE = SketchShape(domain_bits=14, num_second_level=8, independence=4)
SPEC = SketchSpec(num_sketches=32, shape=SHAPE, seed=47)

TIMEOUT = 60.0


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


class FakeClock:
    """Injectable monotonic clock for deterministic bucket tests."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def two_tenant_engine() -> StreamEngine:
    """Engine with disjoint data under prefixes ``t1_`` and ``t2_``.

    Tenant t1's streams A and B overlap heavily; tenant t2's are
    disjoint — so the *same* expression text must produce visibly
    different answers per namespace.
    """
    engine = StreamEngine(SPEC)
    for element in range(400):
        engine.process(Update("t1_A", element, 1))
        engine.process(Update("t1_B", element + 100, 1))  # 300 overlap
        engine.process(Update("t2_A", element, 1))
        engine.process(Update("t2_B", element + 10_000, 1))  # disjoint
    return engine


class TestTokenBucket:
    def test_burst_covers_initial_queries(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=FakeClock())
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_retry_after_is_the_exact_refill_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire(1.0) == 0.0
        # Bucket is empty; one token at 2/s takes 0.5 s.
        assert bucket.try_acquire(1.0) == pytest.approx(0.5)
        clock.advance(0.25)
        # Half a token has refilled; the other half takes 0.25 s more.
        assert bucket.try_acquire(1.0) == pytest.approx(0.25)

    def test_refill_restores_service(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=2.0, clock=clock)
        assert bucket.try_acquire(2.0) == 0.0
        assert bucket.try_acquire(1.0) > 0.0
        clock.advance(0.25)  # refills one token
        assert bucket.try_acquire(1.0) == 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(3600.0)
        assert bucket.tokens == 2.0

    def test_zero_rate_never_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        clock.advance(1e9)
        assert bucket.try_acquire() == float("inf")

    def test_cost_scales_with_batch_size(self):
        bucket = TokenBucket(rate=1.0, burst=4.0, clock=FakeClock())
        assert bucket.try_acquire(cost=4.0) == 0.0  # one 4-expression batch
        assert bucket.try_acquire(cost=1.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=1.0, clock=FakeClock()).try_acquire(0)


class TestTenantSpec:
    def test_burst_defaults_to_rate_floored_at_one(self):
        assert TenantSpec("t", rate=5.0).bucket_burst == 5.0
        assert TenantSpec("t", rate=0.25).bucket_burst == 1.0
        assert TenantSpec("t", rate=5.0, burst=2.0).bucket_burst == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec("")
        with pytest.raises(ValueError):
            TenantSpec("t", prefix="bad/prefix_")
        with pytest.raises(ValueError):
            TenantSpec("t", rate=-1.0)
        with pytest.raises(ValueError):
            TenantSpec("t", burst=0.0)


class TestRateLimitE2E:
    """Over-budget tenants get a typed error, not a hang."""

    def test_rate_limit_is_a_typed_error_and_the_session_survives(self):
        async def scenario():
            engine = two_tenant_engine()
            clock = FakeClock()
            server = QueryServer(
                engine,
                tenants=[
                    TenantSpec("metered", prefix="t1_", rate=1.0, burst=2.0),
                ],
                clock=clock,
            )
            async with server:
                async with QueryClient(
                    "127.0.0.1", server.port, tenant="metered"
                ) as client:
                    # Burst of 2 covers the first two single-expression
                    # queries ...
                    first = await client.query("A & B", 0.25)
                    second = await client.query("A & B", 0.25)
                    assert first == second  # same state, cached
                    # ... the third is over budget: a typed error with a
                    # retry hint, answered immediately (wait_for in the
                    # client would raise TimeoutError on a hang).
                    with pytest.raises(RateLimitedError) as excinfo:
                        await client.query("A & B", 0.25)
                    assert excinfo.value.retry_after == pytest.approx(1.0)
                    assert "metered" in str(excinfo.value)
                    assert "1/s" in str(excinfo.value)
                    # The connection survived; refilling the bucket
                    # restores service on the SAME session.
                    clock.advance(1.0)
                    third = await client.query("A & B", 0.25)
                    assert third == first
                stats = server.stats()["metered"]
                assert stats.rate_limited == 1
                assert stats.errors_by_kind == {"rate-limited": 1}
                assert stats.queries == 3

        run(scenario())

    def test_batch_cost_counts_expressions_not_frames(self):
        async def scenario():
            engine = two_tenant_engine()
            server = QueryServer(
                engine,
                tenants=[
                    TenantSpec("metered", prefix="t1_", rate=0.001, burst=3.0),
                ],
                clock=FakeClock(),
            )
            async with server:
                async with QueryClient(
                    "127.0.0.1", server.port, tenant="metered"
                ) as client:
                    # One frame with 3 expressions drains the burst of 3.
                    await client.query(["A", "B", "A | B"], 0.25)
                    with pytest.raises(RateLimitedError):
                        await client.query("A", 0.25)

        run(scenario())

    def test_rejected_requests_are_not_debited(self):
        """An over-budget request must not push retry_after further out."""
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        for _ in range(5):  # hammering while broke changes nothing
            assert bucket.try_acquire() == pytest.approx(1.0)
        clock.advance(1.0)
        assert bucket.try_acquire() == 0.0

    def test_unlimited_tenant_is_never_throttled(self):
        async def scenario():
            engine = two_tenant_engine()
            server = QueryServer(
                engine,
                tenants=[TenantSpec("free", prefix="t1_")],
                clock=FakeClock(),  # frozen clock: no refills ever
            )
            async with server:
                async with QueryClient(
                    "127.0.0.1", server.port, tenant="free"
                ) as client:
                    for _ in range(20):
                        await client.query("A", 0.25)
                assert server.stats()["free"].rate_limited == 0

        run(scenario())


class TestPlanCacheSharing:
    """One parse across tenants; zero sharing of cache entries."""

    def test_two_tenants_share_one_compiled_plan_but_not_answers(self):
        async def scenario():
            engine = two_tenant_engine()
            server = QueryServer(
                engine,
                tenants=[
                    TenantSpec("acme", prefix="t1_"),
                    TenantSpec("globex", prefix="t2_"),
                ],
            )
            async with server:
                async with QueryClient(
                    "127.0.0.1", server.port, tenant="acme"
                ) as acme, QueryClient(
                    "127.0.0.1", server.port, tenant="globex"
                ) as globex:
                    text = "A & B"
                    ours = await acme.query(text, 0.25)
                    theirs = await globex.query(text, 0.25)
                    # Parse-once: the second tenant's identical text hit
                    # the cache — one ServingPlan object serves both.
                    assert server.plans.parses == 1
                    assert server.plans.hits == 1
                    assert len(server.plans) == 1
                    # ... but the answers are the engine's answers for
                    # each namespace, not a shared cache entry: t1's
                    # streams overlap in 300 elements, t2's in none.
                    assert ours == engine.query("t1_A & t1_B", 0.25)
                    assert theirs == engine.query("t2_A & t2_B", 0.25)
                    assert ours.value > 0.0
                    assert ours.value != theirs.value

        run(scenario())

    def test_resolved_asts_are_memoised_per_prefix(self):
        cache = PlanCache()
        plan = cache.get("A & (B - C)")
        t1 = plan.resolved("t1_")
        t2 = plan.resolved("t2_")
        assert plan.resolved("t1_") is t1  # memoised, not re-rewritten
        assert t1 is not t2
        assert t1.streams() == {"t1_A", "t1_B", "t1_C"}
        assert t2.streams() == {"t2_A", "t2_B", "t2_C"}
        # The empty prefix is the original immutable AST itself.
        assert plan.resolved("") is plan.expression

    def test_lru_eviction_is_bounded_and_counted(self):
        cache = PlanCache(maxsize=2)
        cache.get("A")
        cache.get("B")
        cache.get("A")  # refresh A
        cache.get("C")  # evicts B (least recently used)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.parses == 3
        cache.get("A")  # still cached
        assert cache.parses == 3
        cache.get("B")  # re-parse after eviction
        assert cache.parses == 4

    def test_unparseable_text_is_never_cached(self):
        from repro.errors import ExpressionError

        cache = PlanCache(maxsize=2)
        for _ in range(5):
            with pytest.raises(ExpressionError):
                cache.get("A &")
        assert len(cache) == 0
        assert cache.parses == 0


class TestNamespaceIsolation:
    def test_tenants_cannot_see_or_name_each_others_streams(self):
        async def scenario():
            engine = two_tenant_engine()
            server = QueryServer(
                engine,
                tenants=[
                    TenantSpec("acme", prefix="t1_"),
                    TenantSpec("globex", prefix="t2_"),
                ],
            )
            async with server:
                async with QueryClient(
                    "127.0.0.1", server.port, tenant="acme"
                ) as client:
                    # Physical names of another namespace do not resolve:
                    # "t2_A" parses fine but names no stream under t1_.
                    with pytest.raises(UnknownStreamError) as excinfo:
                        await client.query("t2_A", 0.25)
                    details = excinfo.value.details
                    assert details["unknown"] == ["t2_A"]
                    # ... and the known-streams list leaks only acme's
                    # own logical namespace.
                    assert details["known"] == ["A", "B"]

        run(scenario())

    def test_union_queries_resolve_under_the_tenant_prefix(self):
        async def scenario():
            engine = two_tenant_engine()
            server = QueryServer(
                engine, tenants=[TenantSpec("acme", prefix="t1_")]
            )
            async with server:
                async with QueryClient(
                    "127.0.0.1", server.port, tenant="acme"
                ) as client:
                    served = await client.query_union(["A", "B"], 0.25)
                    assert served == engine.query_union(
                        ["t1_A", "t1_B"], 0.25
                    )

        run(scenario())
