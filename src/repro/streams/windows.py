"""Sliding-window semantics via deletions.

The paper's footnote treats modifications as deletion+insertion; the same
move turns its deletion-proof synopses into *sliding-window* synopses: as
items age out of the window, the source issues the inverse updates, and
the sketch — being deletion-invariant — ends up identical to a sketch
over only the in-window items.

:class:`SlidingWindowDriver` implements the source side: it forwards each
timestamped update to its sink(s) and remembers it; when time advances
past ``window_span``, it emits the inverse updates of everything that
fell out.  Memory is proportional to the number of *in-window* updates —
that state lives at the observing source (which sees its own traffic
anyway), not at the query processor, so the streaming model downstream is
untouched.

Feed the driver **insert-only** observation streams ("items seen
recently").  Windowing a stream that itself contains deletions is
ill-defined for non-negative multiset semantics: expiring a deletion
emits an insertion, and the interleaving can transiently drive an
element's net in-window frequency negative (the sketch tolerates that;
the exact reference store — correctly — does not).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.streams.updates import Update

__all__ = ["SlidingWindowDriver"]


class SlidingWindowDriver:
    """Maintains time-based sliding-window semantics over sinks.

    Parameters
    ----------
    window_span:
        Width of the window in the caller's time unit.  An update observed
        at time ``t`` expires as soon as the clock reaches ``t +
        window_span`` (exclusive bound: ``observe(..., at=0)`` with span 10
        is still in-window at ``advance_to(9)`` and gone at 10).
    sinks:
        Objects with ``process(update)`` or ``apply(update)``; every
        forwarded and inverse update goes to all of them.
    """

    def __init__(self, window_span: float, *sinks) -> None:
        if window_span <= 0:
            raise ValueError("window_span must be positive")
        if not sinks:
            raise ValueError("need at least one sink")
        self.window_span = window_span
        self._handlers = []
        for sink in sinks:
            handler = getattr(sink, "process", None) or getattr(sink, "apply", None)
            if handler is None:
                raise TypeError(
                    f"{type(sink).__name__} has no process()/apply() method"
                )
            self._handlers.append(handler)
        self._clock = float("-inf")
        self._in_window: deque[tuple[float, Update]] = deque()

    # -- ingest ---------------------------------------------------------------

    def observe(self, update: Update, at: float) -> None:
        """Forward one update observed at time ``at`` (non-decreasing)."""
        if at < self._clock:
            raise ValueError(
                f"time went backwards: {at} after {self._clock}"
            )
        self.advance_to(at)
        self._emit(update)
        self._in_window.append((at, update))

    def observe_many(self, updates: Iterable[tuple[Update, float]]) -> None:
        """Observe a sequence of (update, timestamp) pairs."""
        for update, at in updates:
            self.observe(update, at)

    def advance_to(self, now: float) -> int:
        """Move the clock, expiring (deleting) everything out of window.

        Returns the number of updates expired.
        """
        if now < self._clock:
            raise ValueError(f"time went backwards: {now} after {self._clock}")
        self._clock = now
        expired = 0
        while self._in_window and self._in_window[0][0] + self.window_span <= now:
            _, update = self._in_window.popleft()
            self._emit(update.inverse())
            expired += 1
        return expired

    # -- introspection ---------------------------------------------------------

    @property
    def clock(self) -> float:
        return self._clock

    @property
    def in_window_count(self) -> int:
        """Number of updates currently inside the window."""
        return len(self._in_window)

    # -- internals -------------------------------------------------------------

    def _emit(self, update: Update) -> None:
        for handler in self._handlers:
            handler(update)
