"""Continuous (standing) queries over the stream engine.

The architecture of the paper's Figure 1 serves queries *online* while
updates keep streaming in.  :class:`ContinuousQueryProcessor` wraps a
:class:`~repro.streams.engine.StreamEngine` with standing set-expression
queries that re-evaluate every ``every`` processed updates, keep a
history of observations, and fire alert callbacks on threshold crossings
— the "detect the DoS attack as it happens" loop of the paper's
introduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.results import WitnessEstimate
from repro.errors import ReproError
from repro.expr.ast import SetExpression
from repro.expr.parser import parse
from repro.streams.engine import StreamEngine
from repro.streams.updates import Update

__all__ = ["Observation", "StandingQuery", "ContinuousQueryProcessor"]


@dataclass(frozen=True)
class Observation:
    """One evaluation of a standing query."""

    at_update: int  # engine.updates_processed when evaluated
    estimate: WitnessEstimate

    @property
    def value(self) -> float:
        """The cardinality estimate of this observation."""
        return self.estimate.value


@dataclass
class StandingQuery:
    """A registered continuous query and its observation history."""

    name: str
    expression: SetExpression
    epsilon: float
    every: int
    threshold: float | None
    on_alert: Callable[["StandingQuery", Observation], None] | None
    history: list[Observation] = field(default_factory=list)
    alerts: list[Observation] = field(default_factory=list)

    @property
    def latest(self) -> Observation | None:
        """The most recent observation, if any."""
        return self.history[-1] if self.history else None

    def breached(self, observation: Observation) -> bool:
        """Whether an observation exceeds the query's alert threshold."""
        return self.threshold is not None and observation.value > self.threshold


class ContinuousQueryProcessor:
    """Evaluates standing queries as updates flow through the engine.

    Usage::

        processor = ContinuousQueryProcessor(engine)
        processor.register(
            "bypass", "(R1 & R2) - R3", every=10_000,
            threshold=50_000, on_alert=page_the_oncall,
        )
        for update in traffic:
            processor.process(update)

    Evaluation cost is bounded: queries touch only per-level aggregates of
    the maintained synopses, so even aggressive cadences stay cheap
    relative to maintenance.
    """

    def __init__(self, engine: StreamEngine) -> None:
        self.engine = engine
        self._queries: dict[str, StandingQuery] = {}

    # -- registration -----------------------------------------------------

    def register(
        self,
        name: str,
        expression: SetExpression | str,
        epsilon: float = 0.1,
        every: int = 10_000,
        threshold: float | None = None,
        on_alert: Callable[[StandingQuery, Observation], None] | None = None,
    ) -> StandingQuery:
        """Register a standing query evaluated every ``every`` updates.

        ``threshold``/``on_alert`` make it an alerting rule: when an
        observation exceeds the threshold, it is recorded in
        ``query.alerts`` and the callback (if any) fires.
        """
        if name in self._queries:
            raise ReproError(f"standing query {name!r} already registered")
        if every < 1:
            raise ValueError("every must be positive")
        if not (0 < epsilon < 1):
            raise ValueError("epsilon must be in (0, 1)")
        if isinstance(expression, str):
            expression = parse(expression)
        query = StandingQuery(
            name=name,
            expression=expression,
            epsilon=epsilon,
            every=every,
            threshold=threshold,
            on_alert=on_alert,
        )
        self._queries[name] = query
        return query

    def unregister(self, name: str) -> None:
        """Remove a standing query (its history is discarded)."""
        del self._queries[name]

    def query_names(self) -> list[str]:
        """Names of the registered standing queries."""
        return sorted(self._queries)

    def __getitem__(self, name: str) -> StandingQuery:
        return self._queries[name]

    # -- streaming ----------------------------------------------------------

    def process(self, update: Update) -> None:
        """Feed one update; evaluate any queries whose cadence is due."""
        self.engine.process(update)
        position = self.engine.updates_processed
        for query in self._queries.values():
            if position % query.every == 0:
                self._evaluate(query, position)

    def process_many(self, updates) -> None:
        """Feed a sequence of updates through :meth:`process`."""
        for update in updates:
            self.process(update)

    def evaluate_now(self, name: str) -> Observation:
        """Force an immediate evaluation of one standing query."""
        return self._evaluate(self._queries[name], self.engine.updates_processed)

    # -- internals -------------------------------------------------------------

    def _evaluate(self, query: StandingQuery, position: int) -> Observation:
        estimate = self.engine.query(query.expression, query.epsilon)
        observation = Observation(at_update=position, estimate=estimate)
        query.history.append(observation)
        if query.breached(observation):
            query.alerts.append(observation)
            if query.on_alert is not None:
                query.on_alert(query, observation)
        return observation
