"""Unit tests for continuous (standing) queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.family import SketchSpec
from repro.core.sketch import SketchShape
from repro.errors import ReproError, UnknownQueryError
from repro.streams.continuous import ContinuousQueryProcessor
from repro.streams.engine import StreamEngine
from repro.streams.updates import Update

SHAPE = SketchShape(domain_bits=20, num_second_level=8, independence=6)


def make_processor(num_sketches=96, seed=1):
    engine = StreamEngine(SketchSpec(num_sketches=num_sketches, shape=SHAPE, seed=seed))
    return ContinuousQueryProcessor(engine)


def feed(processor, stream, elements, delta=1):
    for element in elements:
        processor.process(Update(stream, int(element), delta))


class TestRegistration:
    def test_register_and_list(self):
        processor = make_processor()
        processor.register("q1", "A & B", every=100)
        processor.register("q2", "A - B", every=200)
        assert processor.query_names() == ["q1", "q2"]
        assert processor["q1"].expression.to_text() == "(A & B)"

    def test_duplicate_name_rejected(self):
        processor = make_processor()
        processor.register("q", "A", every=10)
        with pytest.raises(ReproError):
            processor.register("q", "B", every=10)

    def test_unregister(self):
        processor = make_processor()
        processor.register("q", "A", every=10)
        processor.unregister("q")
        assert processor.query_names() == []

    def test_unregister_unknown_name_raises_clear_error(self):
        processor = make_processor()
        processor.register("cpu", "A", every=10)
        with pytest.raises(UnknownQueryError, match="'nope'"):
            processor.unregister("nope")
        # The error names the registered queries to aid debugging ...
        with pytest.raises(ReproError, match="cpu"):
            processor.unregister("nope")
        # ... and stays catchable as the builtin KeyError.
        with pytest.raises(KeyError):
            processor.unregister("nope")
        assert processor.query_names() == ["cpu"]

    def test_validation(self):
        processor = make_processor()
        with pytest.raises(ValueError):
            processor.register("q", "A", every=0)
        with pytest.raises(ValueError):
            processor.register("q", "A", epsilon=0.0)


class TestCadence:
    def test_evaluates_every_n_updates(self):
        processor = make_processor()
        query = processor.register("q", "A", every=50)
        feed(processor, "A", range(170))
        assert len(query.history) == 3  # at updates 50, 100, 150
        assert [obs.at_update for obs in query.history] == [50, 100, 150]

    def test_queries_have_independent_cadence(self):
        processor = make_processor()
        fast = processor.register("fast", "A", every=30)
        slow = processor.register("slow", "A", every=90)
        feed(processor, "A", range(90))
        assert len(fast.history) == 3
        assert len(slow.history) == 1

    def test_evaluate_now(self):
        processor = make_processor()
        query = processor.register("q", "A", every=1_000_000)
        feed(processor, "A", range(10))
        observation = processor.evaluate_now("q")
        assert query.history == [observation]
        assert observation.at_update == 10

    def test_estimates_track_stream_growth(self):
        processor = make_processor(num_sketches=128)
        query = processor.register("q", "A", every=1000, epsilon=0.2)
        rng = np.random.default_rng(7)
        elements = rng.choice(2**20, size=3000, replace=False)
        feed(processor, "A", elements)
        values = [obs.value for obs in query.history]
        assert len(values) == 3
        assert values[0] < values[-1]
        assert abs(values[-1] - 3000) / 3000 < 0.4


class TestAlerts:
    def test_threshold_breach_fires_callback(self):
        processor = make_processor(num_sketches=128)
        fired = []
        query = processor.register(
            "watch",
            "A",
            every=500,
            epsilon=0.2,
            threshold=700,
            on_alert=lambda q, o: fired.append((q.name, o.value)),
        )
        rng = np.random.default_rng(8)
        elements = rng.choice(2**20, size=2000, replace=False)
        feed(processor, "A", elements)
        assert query.alerts  # stream grows past 700 distinct elements
        assert fired
        assert fired[0][0] == "watch"
        # Early observations (≤ 500 distinct) must not alert.
        assert query.history[0].value < 700 or query.history[0] in query.alerts

    def test_no_threshold_no_alerts(self):
        processor = make_processor()
        query = processor.register("q", "A", every=100)
        feed(processor, "A", range(300))
        assert query.alerts == []

    def test_deletions_can_clear_alert_condition(self):
        processor = make_processor(num_sketches=128)
        query = processor.register("q", "A", every=1000, epsilon=0.2, threshold=1500)
        rng = np.random.default_rng(9)
        elements = rng.choice(2**20, size=2000, replace=False)
        feed(processor, "A", elements)
        assert query.latest.value > 1500
        feed(processor, "A", elements[:2000], delta=-1)
        assert query.latest.value < 1500
