"""Unit tests for tabulation hashing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.lsb import lsb_array
from repro.hashing.tabulation import TabulationHash, random_tabulation_hash


class TestConstruction:
    def test_wrong_table_count_rejected(self):
        with pytest.raises(ValueError):
            TabulationHash(tables=((0,) * 256,) * 7)

    def test_wrong_table_size_rejected(self):
        with pytest.raises(ValueError):
            TabulationHash(tables=((0,) * 255,) * 8)

    def test_independence_reported(self):
        drawn = random_tabulation_hash(np.random.default_rng(0))
        assert drawn.independence == 3

    def test_deterministic_per_seed(self):
        a = random_tabulation_hash(np.random.default_rng(5))
        b = random_tabulation_hash(np.random.default_rng(5))
        assert a == b


class TestEvaluation:
    def test_scalar_matches_array(self):
        hash_fn = random_tabulation_hash(np.random.default_rng(1))
        elements = [0, 1, 255, 256, 2**30, 2**60]
        array_result = hash_fn(np.asarray(elements, dtype=np.uint64))
        for element, value in zip(elements, array_result):
            assert hash_fn(element) == int(value)

    def test_output_within_61_bits(self):
        hash_fn = random_tabulation_hash(np.random.default_rng(2))
        values = hash_fn(np.arange(10_000, dtype=np.uint64))
        assert int(values.max()) < 2**61

    def test_matches_manual_xor(self):
        hash_fn = random_tabulation_hash(np.random.default_rng(3))
        element = 0x0123456789ABCDEF
        expected = 0
        for char_index in range(8):
            char = (element >> (8 * char_index)) & 0xFF
            expected ^= hash_fn.tables[char_index][char]
        assert hash_fn(element) == expected & ((1 << 61) - 1)

    def test_distinct_inputs_rarely_collide(self):
        hash_fn = random_tabulation_hash(np.random.default_rng(4))
        values = hash_fn(np.arange(100_000, dtype=np.uint64))
        assert len(np.unique(values)) == 100_000

    def test_geometric_level_distribution(self):
        """Tabulation output must feed the LSB pipeline correctly."""
        hash_fn = random_tabulation_hash(np.random.default_rng(6))
        rng = np.random.default_rng(7)
        elements = rng.integers(0, 2**30, size=200_000, dtype=np.uint64)
        levels = lsb_array(hash_fn(elements))
        for level in range(4):
            frequency = float((levels == level).mean())
            assert abs(frequency - 2.0 ** -(level + 1)) < 0.01

    def test_empty_batch(self):
        hash_fn = random_tabulation_hash(np.random.default_rng(8))
        assert hash_fn(np.array([], dtype=np.uint64)).shape == (0,)
