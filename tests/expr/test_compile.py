"""Tests for the postfix expression compiler (bit-identity with the AST walk)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.expr.ast import (
    DifferenceExpr,
    IntersectionExpr,
    SetExpression,
    StreamRef,
    UnionExpr,
    streams,
)
from repro.expr.compile import compile_expression
from repro.expr.parser import parse

NAMES = ("A", "B", "C", "D")


def random_expression(rng: np.random.Generator, depth: int) -> SetExpression:
    if depth == 0 or rng.random() < 0.3:
        return StreamRef(NAMES[rng.integers(len(NAMES))])
    operator = [UnionExpr, IntersectionExpr, DifferenceExpr][rng.integers(3)]
    return operator(
        random_expression(rng, depth - 1), random_expression(rng, depth - 1)
    )


def random_masks(rng: np.random.Generator, size: int = 64):
    return {name: rng.random(size) < 0.5 for name in NAMES}


class TestBitIdentity:
    def test_matches_boolean_mask_on_random_trees(self):
        rng = np.random.default_rng(42)
        for _ in range(200):
            expression = random_expression(rng, 4)
            masks = random_masks(rng)
            np.testing.assert_array_equal(
                compile_expression(expression).evaluate(masks),
                expression.boolean_mask(masks),
            )

    def test_inputs_never_mutated(self):
        rng = np.random.default_rng(43)
        expression = parse("(A - B) & (C | (D - A))")
        masks = random_masks(rng)
        saved = {name: mask.copy() for name, mask in masks.items()}
        compile_expression(expression).evaluate(masks)
        for name in NAMES:
            np.testing.assert_array_equal(masks[name], saved[name])

    def test_bare_stream_aliases_input(self):
        # Same no-copy semantics as StreamRef.boolean_mask (np.asarray).
        mask = np.array([True, False, True])
        result = compile_expression(StreamRef("A")).evaluate({"A": mask})
        assert result is mask

    def test_non_boolean_inputs_coerced(self):
        expression = parse("A & B")
        masks = {"A": np.array([1, 0, 2]), "B": np.array([1, 1, 0])}
        np.testing.assert_array_equal(
            compile_expression(expression).evaluate(masks),
            np.array([True, False, False]),
        )


class TestProgramStructure:
    def test_memoised_per_expression(self):
        first = compile_expression(parse("A & (B - C)"))
        second = compile_expression(parse("A & (B - C)"))
        assert second is first

    def test_distinct_operators_not_confused(self):
        A, B = streams("A", "B")
        assert compile_expression(A | B) is not compile_expression(A & B)
        masks = {"A": np.array([True, False]), "B": np.array([False, False])}
        np.testing.assert_array_equal(
            compile_expression(A | B).evaluate(masks), [True, False]
        )
        np.testing.assert_array_equal(
            compile_expression(A & B).evaluate(masks), [False, False]
        )

    def test_streams_and_length(self):
        program = compile_expression(parse("(A - B) | C"))
        assert program.streams == frozenset({"A", "B", "C"})
        assert len(program) == 5  # three loads, one DIFF, one OR

    def test_listing(self):
        text = compile_expression(parse("(A - B) | C")).as_text()
        assert text.splitlines() == ["LOAD A", "LOAD B", "DIFF", "LOAD C", "OR"]


class TestFallback:
    def test_unknown_node_delegates_to_boolean_mask(self):
        class Complement(SetExpression):
            """A node type the compiler has no opcode for."""

            def __init__(self, inner):
                self.inner = inner

            def streams(self):
                return self.inner.streams()

            def evaluate(self, sets):  # pragma: no cover - unused
                raise NotImplementedError

            def boolean_mask(self, masks):
                return ~self.inner.boolean_mask(masks)

            def contains(self, membership):  # pragma: no cover - unused
                raise NotImplementedError

            def to_text(self):
                return f"~{self.inner.to_text()}"

            def __hash__(self):
                return hash(("complement", self.inner))

            def __eq__(self, other):
                return (
                    isinstance(other, Complement) and other.inner == self.inner
                )

        A, B = streams("A", "B")
        expression = IntersectionExpr(A, Complement(B))
        masks = {"A": np.array([True, True]), "B": np.array([True, False])}
        np.testing.assert_array_equal(
            compile_expression(expression).evaluate(masks),
            expression.boolean_mask(masks),
        )

    def test_compiled_convenience_method(self):
        expression = parse("A - B")
        assert expression.compiled() is compile_expression(expression)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
