"""Unit tests for update-stream generation."""

from __future__ import annotations

import numpy as np

from repro.datagen.updates_gen import multiset_updates, with_phantom_deletions
from repro.streams.exact import ExactStreamStore


class TestPhantomDeletions:
    def test_net_effect_is_the_real_elements(self):
        rng = np.random.default_rng(140)
        elements = rng.choice(2**20, size=200, replace=False)
        updates = with_phantom_deletions("A", elements, rng, phantom_fraction=1.0)
        store = ExactStreamStore()
        store.apply_many(updates)
        assert store.distinct_set("A") == set(int(e) for e in elements)

    def test_sequence_is_legal(self):
        """Every prefix must keep net frequencies non-negative; the exact
        store raises otherwise, so a clean apply IS the assertion."""
        rng = np.random.default_rng(141)
        elements = rng.choice(2**20, size=300, replace=False)
        updates = with_phantom_deletions("A", elements, rng, phantom_fraction=2.0)
        ExactStreamStore().apply_many(updates)

    def test_contains_deletions(self):
        rng = np.random.default_rng(142)
        elements = rng.choice(2**20, size=100, replace=False)
        updates = with_phantom_deletions("A", elements, rng, phantom_fraction=0.5)
        assert any(update.is_deletion for update in updates)
        assert sum(1 for u in updates if u.is_deletion) == 50

    def test_zero_fraction_is_pure_insertions(self):
        rng = np.random.default_rng(143)
        elements = np.arange(10, dtype=np.uint64)
        updates = with_phantom_deletions("A", elements, rng, phantom_fraction=0.0)
        assert len(updates) == 10
        assert all(update.is_insertion for update in updates)

    def test_sketch_state_identical_to_insert_only(self):
        """The headline claim, via generated traffic: churn-heavy update
        stream and insert-only stream produce identical sketches."""
        from repro.core.family import SketchSpec
        from repro.core.sketch import SketchShape

        rng = np.random.default_rng(144)
        elements = rng.choice(2**20, size=150, replace=False)
        updates = with_phantom_deletions(
            "A", elements, rng, phantom_fraction=1.5, domain_bits=20
        )
        spec = SketchSpec(
            num_sketches=8,
            shape=SketchShape(domain_bits=20, num_second_level=8, independence=4),
            seed=5,
        )
        churned = spec.build()
        churned.update_batch(
            [update.element for update in updates],
            [update.delta for update in updates],
        )
        clean = spec.build()
        clean.update_batch(elements)
        assert churned == clean


class TestMultisetUpdates:
    def test_every_element_survives(self):
        rng = np.random.default_rng(145)
        elements = rng.choice(2**20, size=100, replace=False)
        updates = multiset_updates("A", elements, rng)
        store = ExactStreamStore()
        store.apply_many(updates)
        assert store.distinct_set("A") == set(int(e) for e in elements)

    def test_frequencies_in_range(self):
        rng = np.random.default_rng(146)
        elements = rng.choice(2**20, size=100, replace=False)
        updates = multiset_updates("A", elements, rng, max_multiplicity=4)
        store = ExactStreamStore()
        store.apply_many(updates)
        for element in elements:
            assert 1 <= store.frequency("A", int(element)) <= 4

    def test_contains_both_signs(self):
        rng = np.random.default_rng(147)
        elements = rng.choice(2**20, size=200, replace=False)
        updates = multiset_updates("A", elements, rng)
        assert any(update.is_deletion for update in updates)
        assert any(update.is_insertion for update in updates)

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            multiset_updates("A", np.arange(3), np.random.default_rng(0), 0)
