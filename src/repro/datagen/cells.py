"""Venn-cell probability assignment for controlled stream generation.

Section 5.1 of the paper generates data "in a controlled manner": every
generated element is assigned to one cell of the Venn diagram over the
participating streams, with cell probabilities chosen so that

* the cells comprising the target expression ``E`` carry total probability
  ``|E| / u`` (the target cardinality ratio), and
* all underlying streams have (roughly) the same expected size.

:func:`balanced_cell_probabilities` computes such an assignment: it starts
from probability uniformly spread within the ``E``-cells and within the
complement cells, then — when scipy is available — polishes the split with
a small constrained least-squares solve that minimises the variance of the
expected stream sizes while keeping the two group totals fixed.
"""

from __future__ import annotations

import numpy as np

from repro.expr.ast import SetExpression
from repro.expr.venn import Cell, all_cells, cells_of_expression

__all__ = ["CellAssignment", "balanced_cell_probabilities"]


class CellAssignment:
    """Cells and their probabilities for one controlled generation run."""

    def __init__(self, cells: list[Cell], probabilities: np.ndarray) -> None:
        if len(cells) != len(probabilities):
            raise ValueError("cells and probabilities must align")
        if abs(float(probabilities.sum()) - 1.0) > 1e-9:
            raise ValueError("probabilities must sum to 1")
        if float(probabilities.min()) < -1e-12:
            raise ValueError("probabilities must be non-negative")
        self.cells = list(cells)
        self.probabilities = np.clip(probabilities, 0.0, None)
        self.probabilities /= self.probabilities.sum()

    def expected_stream_ratio(self, stream: str) -> float:
        """Expected |stream| / u under this assignment."""
        member = np.array([stream in cell for cell in self.cells])
        return float(self.probabilities[member].sum())


def balanced_cell_probabilities(
    expression: SetExpression, target_ratio: float
) -> CellAssignment:
    """Cell probabilities hitting ``target_ratio = |E| / u`` with balanced
    stream sizes.

    Raises ``ValueError`` when the expression has no satisfying cell (e.g.
    ``A - A``) but a positive ratio is requested, or when the complement is
    empty but ``target_ratio < 1``.
    """
    if not (0.0 <= target_ratio <= 1.0):
        raise ValueError("target_ratio must lie in [0, 1]")
    names = sorted(expression.streams())
    cells = all_cells(names)
    in_expression = np.array(
        [cell in set(cells_of_expression(expression)) for cell in cells]
    )

    if target_ratio > 0 and not in_expression.any():
        raise ValueError(
            f"expression {expression} is unsatisfiable; cannot target a "
            f"positive cardinality ratio"
        )
    if target_ratio < 1 and in_expression.all():
        raise ValueError(
            f"expression {expression} covers the whole union; cannot target "
            f"a ratio below 1"
        )

    probabilities = np.zeros(len(cells))
    if in_expression.any():
        probabilities[in_expression] = target_ratio / in_expression.sum()
    if (~in_expression).any():
        probabilities[~in_expression] = (1.0 - target_ratio) / (~in_expression).sum()

    polished = _polish_balance(cells, names, probabilities, in_expression, target_ratio)
    return CellAssignment(cells, polished)


def _polish_balance(
    cells: list[Cell],
    names: list[str],
    start: np.ndarray,
    in_expression: np.ndarray,
    target_ratio: float,
) -> np.ndarray:
    """Minimise the variance of expected stream sizes, keeping the two
    group totals (expression cells vs complement cells) fixed.

    Falls back to the uniform-within-groups start if scipy is missing or
    the solver does not improve on it.
    """
    try:
        from scipy.optimize import minimize
    except ImportError:  # pragma: no cover - scipy is a hard dev dependency
        return start

    membership = np.array(
        [[name in cell for cell in cells] for name in names], dtype=np.float64
    )

    def imbalance(p: np.ndarray) -> float:
        sizes = membership @ p
        return float(((sizes - sizes.mean()) ** 2).sum())

    constraints = [
        {"type": "eq", "fun": lambda p: p[in_expression].sum() - target_ratio},
        {"type": "eq", "fun": lambda p: p.sum() - 1.0},
    ]
    bounds = [(0.0, 1.0)] * len(cells)
    result = minimize(
        imbalance, start, method="SLSQP", bounds=bounds, constraints=constraints
    )
    if not result.success or imbalance(result.x) > imbalance(start):
        return start
    polished = np.clip(result.x, 0.0, None)
    # Re-impose the group totals exactly (SLSQP satisfies them to ~1e-9;
    # rescale within each group so downstream accounting is exact).
    if in_expression.any() and polished[in_expression].sum() > 0:
        polished[in_expression] *= target_ratio / polished[in_expression].sum()
    if (~in_expression).any() and polished[~in_expression].sum() > 0:
        polished[~in_expression] *= (1.0 - target_ratio) / polished[~in_expression].sum()
    return polished
