"""Scale-invariance check: error depends on |E|/u, not on absolute u.

DESIGN.md's substitution argument — running the paper's sweeps at a
reduced universe preserves the figures' shape — rests on the claim that
the witness estimator's error is a function of the cardinality *ratio*
``|E|/u`` and the synopsis parameters ``(r, s)``, not of the absolute
union size.  This bench measures |A ∩ B| error at a fixed ratio and
sketch count across a 16× range of u; the series must stay flat within
trial noise.
"""

from __future__ import annotations

import numpy as np
from _common import build_families

from repro.core.intersection import estimate_intersection
from repro.datagen.controlled import generate_controlled
from repro.experiments.metrics import relative_error, trimmed_mean_error

UNION_SIZES = (1 << 10, 1 << 12, 1 << 14)
RATIO = 0.25
NUM_SKETCHES = 192
TRIALS = 8


def run_scale_sweep():
    rows = []
    for union_size in UNION_SIZES:
        errors = []
        for trial in range(TRIALS):
            rng = np.random.default_rng([9000, union_size, trial])
            dataset = generate_controlled(
                "A & B", union_size, RATIO, rng, domain_bits=24
            )
            families = build_families(dataset, NUM_SKETCHES, seed=trial)
            estimate = estimate_intersection(families["A"], families["B"], 0.1)
            errors.append(relative_error(estimate.value, dataset.target_size))
        rows.append((union_size, trimmed_mean_error(errors)))
    return rows


def test_scale_invariance(benchmark):
    rows = benchmark.pedantic(run_scale_sweep, rounds=1, iterations=1)
    print()
    print(
        f"Scale invariance: |A ∩ B| at ratio {RATIO}, r={NUM_SKETCHES} "
        f"({TRIALS} trials)"
    )
    print(f"{'u':>8s} {'trimmed error':>14s}")
    for union_size, error in rows:
        print(f"{union_size:8d} {100 * error:13.1f}%")
    print("claim: the error is a function of |E|/u and (r, s), not of u —")
    print("       the basis for reproducing the paper at reduced scale")

    errors = [error for _, error in rows]
    # Flat within a generous noise band: no systematic growth with u.
    assert max(errors) - min(errors) < 0.20
    assert all(error < 0.5 for error in errors)
