"""Sharded parallel ingestion: scale-out maintenance by sketch linearity.

The 2-level hash sketch is a *linear* synopsis: the sketch of a multiset
sum is the entrywise sum of sketches.  The distributed-sites model
(:mod:`repro.streams.distributed`) uses that property across machines;
this module uses it **inside one process** to parallelise ingest.  A
:class:`ShardedEngine` hash-partitions incoming update tuples by
``(stream, element)`` across ``N`` worker shards, so each shard owns a
disjoint slice of every stream's element domain and maintains its own
:class:`~repro.core.family.SketchFamily` per stream — under the *same*
:class:`~repro.core.family.SketchSpec` coins, which is what keeps the
shards' synopses combinable.  Queries merge by summing counter arrays;
correctness is exactly the linearity argument, so no coordination is
needed on the ingest hot path and the merged counters are bit-identical
to a single engine's.

Three executor backends share one routing/buffering front end:

``"serial"``
    Apply batches inline.  The zero-moving-parts reference; sharding
    still pays via the linearity aggregation of
    :meth:`~repro.core.family.SketchFamily.ingest_batch`.
``"threads"``
    One single-thread executor per shard.  Per-shard ordering is free
    (one worker per shard), shards never share counter state, and the
    numpy maintenance kernels release the GIL, so shards overlap on
    multi-core hosts.
``"processes"``
    One worker process per shard, with every (shard, stream) counter
    array living in POSIX shared memory (``multiprocessing.shared_memory``).
    Workers write their shard's counters in place; the parent maps the
    same segments and merges them zero-copy at query time — counters are
    never serialised after the initial handshake.

Per-shard ingest metrics (updates routed/applied, flush time, merge
time) are surfaced through :meth:`ShardedEngine.stats` as
:class:`~repro.streams.stats.IngestStats`.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import Future, ThreadPoolExecutor, wait
from dataclasses import replace as _replace_dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.family import SketchFamily, SketchSpec, sum_families
from repro.core.plan import DenseScatterTable, HashPlan, plan_for
from repro.core.results import UnionEstimate, WitnessEstimate
from repro.expr.ast import SetExpression
from repro.streams.engine import StreamEngine
from repro.streams.stats import IngestStats, ShardStats
from repro.streams.updates import Update

__all__ = ["ShardedEngine", "shard_for", "shard_vector"]

_MASK64 = (1 << 64) - 1
_MIX = 0x9E3779B97F4A7C15  # splitmix64 / golden-ratio multiplier
_FNV = 0x100000001B3


def _stream_salt(stream: str) -> int:
    """A 64-bit per-stream salt, stable across processes and Python runs.

    ``zlib.crc32`` is seed-free (unlike ``hash``, which varies with
    ``PYTHONHASHSEED``), so every worker process routes identically.
    """
    return (zlib.crc32(stream.encode("utf-8")) * _FNV) & _MASK64


def shard_for(stream: str, element: int, num_shards: int) -> int:
    """The shard that owns ``(stream, element)``.

    Deterministic, process-stable, and independent of the sketch hash
    functions (the partitioner must not correlate with the first-level
    hash, or shards would own biased slices of the level distribution).
    """
    x = (int(element) ^ _stream_salt(stream)) & _MASK64
    x = (x * _MIX) & _MASK64
    x ^= x >> 33
    return int(x % num_shards)


def shard_vector(stream: str, elements, num_shards: int) -> np.ndarray:
    """Vectorised :func:`shard_for` over an element array."""
    x = np.asarray(elements, dtype=np.uint64) ^ np.uint64(_stream_salt(stream))
    x = x * np.uint64(_MIX)  # uint64 arithmetic wraps mod 2**64
    x = x ^ (x >> np.uint64(33))
    return (x % np.uint64(num_shards)).astype(np.int64)


class _MutableShardStats:
    """Mutable per-shard counters; snapshots freeze into ShardStats."""

    __slots__ = (
        "shard_id",
        "updates_routed",
        "updates_applied",
        "batches_flushed",
        "flush_seconds",
    )

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.updates_routed = 0
        self.updates_applied = 0
        self.batches_flushed = 0
        self.flush_seconds = 0.0

    def snapshot(self, streams: int) -> ShardStats:
        return ShardStats(
            shard_id=self.shard_id,
            updates_routed=self.updates_routed,
            updates_applied=self.updates_applied,
            batches_flushed=self.batches_flushed,
            flush_seconds=self.flush_seconds,
            streams=streams,
        )


# -- process-backend worker ---------------------------------------------------
#
# The worker owns no counter memory: every (shard, stream) family wraps a
# shared-memory segment created by the parent.  Messages arrive on a FIFO
# queue, so a "sync" reply proves every earlier batch has been applied.


def _disable_worker_shm_tracking() -> None:
    """Stop this worker process from resource-tracking shared memory.

    Segment lifetime is owned by the parent (create → unlink); Python 3.11
    has no ``track=False`` on attach, and letting the worker register too
    either double-unregisters a fork-shared tracker or makes a spawn-local
    tracker "clean up" segments the parent still uses.
    """
    try:  # pragma: no cover - depends on CPython internals
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def register(name, rtype):
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = register
    except Exception:
        pass


def _shard_worker(shard_id, spec_payload, use_plan, inbox, outbox):
    """Run one shard: attach segments, apply batches, answer syncs."""
    from multiprocessing import shared_memory

    _disable_worker_shm_tracking()

    spec = SketchSpec.from_json_dict(spec_payload)
    plan_arg = "auto" if use_plan else None
    counter_shape = (spec.num_sketches,) + spec.shape.counter_shape
    segments: dict[str, object] = {}
    families: dict[str, SketchFamily] = {}
    stats = _MutableShardStats(shard_id)
    failure: str | None = None

    while True:
        message = inbox.get()
        kind = message[0]
        try:
            if kind == "register":
                _, stream, shm_name = message
                shm = shared_memory.SharedMemory(name=shm_name)
                segments[stream] = shm
                counters = np.ndarray(
                    counter_shape, dtype=np.int64, buffer=shm.buf
                )
                families[stream] = SketchFamily(spec, counters)
            elif kind == "batch":
                _, stream, element_bytes, delta_bytes = message
                if failure is not None:
                    continue  # poisoned: drain without applying
                elements = np.frombuffer(element_bytes, dtype=np.uint64)
                deltas = (
                    None
                    if delta_bytes is None
                    else np.frombuffer(delta_bytes, dtype=np.int64)
                )
                started = time.perf_counter()
                applied = families[stream].ingest_batch(
                    elements, deltas, plan=plan_arg
                )
                stats.flush_seconds += time.perf_counter() - started
                stats.batches_flushed += 1
                stats.updates_routed += elements.size
                stats.updates_applied += applied
            elif kind == "merge":
                _, stream, payload = message
                if failure is not None:
                    continue  # poisoned: drain without applying
                incoming = SketchFamily.from_bytes(payload, spec)
                families[stream].merge_in_place(incoming)
            elif kind == "dense":
                # Dense scatter tables are immutable rows keyed to the
                # coins, so per-worker sharing is one shm attach: the
                # parent built (or learned) the table once and every
                # worker maps the same pages read-only.
                _, shm_name, rows_shape, dtype_str, keys_bytes = message
                if use_plan:
                    shm = shared_memory.SharedMemory(name=shm_name)
                    segments[f"__dense__:{shm_name}"] = shm
                    rows = np.ndarray(
                        tuple(rows_shape), dtype=np.dtype(dtype_str), buffer=shm.buf
                    )
                    keys = (
                        None
                        if keys_bytes is None
                        else np.frombuffer(keys_bytes, dtype=np.uint64)
                    )
                    plan_for(spec).attach_dense(
                        DenseScatterTable(rows, keys=keys)
                    )
            elif kind == "sync":
                plan_payload = (
                    plan_for(spec).stats().to_json_dict() if use_plan else None
                )
                outbox.put(
                    (
                        "sync",
                        shard_id,
                        stats.snapshot(len(families)),
                        plan_payload,
                        failure,
                    )
                )
            elif kind == "stop":
                families.clear()
                for shm in segments.values():
                    try:
                        shm.close()
                    except BufferError:  # pragma: no cover
                        pass
                outbox.put(("stopped", shard_id, None, None, None))
                return
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            if failure is None:
                failure = f"{type(exc).__name__}: {exc}"


class ShardedEngine:
    """Parallel-ingest engine: N shards, one linear synopsis per slice.

    Drop-in alternative to :class:`~repro.streams.engine.StreamEngine`
    for the ingest-heavy deployment: same ``process``/``flush``/``query``
    surface, same estimates (merged counters are bit-identical to a
    single engine fed the same updates), but maintenance is partitioned
    across ``num_shards`` workers that never contend on counter state.

    Parameters
    ----------
    spec:
        Sketch recipe shared by every shard and stream (the coins).
    num_shards:
        Number of disjoint element-slice owners.
    batch_size:
        Buffered updates per (shard, stream) that trigger a dispatch.
        The default (16384) is deliberately larger than
        :class:`StreamEngine`'s: each dispatch is aggregated by linearity
        (``np.unique`` collapses repeats, churn cancels) before any
        counter maintenance, and a wider aggregation window collapses
        more of a skewed stream's hot head — the single-engine weighted
        path, by contrast, is fastest at small cache-friendly batches.
    executor:
        ``"serial"``, ``"threads"`` (default), or ``"processes"`` — see
        the module docstring for the trade-offs.
    use_plan:
        Route shard maintenance through :class:`~repro.core.plan.HashPlan`
        machinery.  The in-process backends (``"serial"``, ``"threads"``)
        give every shard its *own* plan over the spec's coins
        (:meth:`~repro.core.plan.HashPlan.sibling` of the canonical plan):
        shards own disjoint element slices, so private element-row caches
        stop them evicting each other's rows, while a shared
        :class:`~repro.core.plan.PlanTimers` keeps the reported
        hash/scatter wall-clock de-overlapped across concurrent shard
        threads.  Each ``"processes"`` worker holds its own per-process
        plan.  Counters stay bit-identical either way.
    dense_domain:
        Precompute a dense scatter table covering ``[0, dense_domain)``
        and share it with every shard (in-process shards share the table
        object; ``"processes"`` workers map the same rows through one
        shared-memory segment).  Requires ``use_plan=True``.
    hot_keys:
        Learn a hot-key dictionary from the first ``hot_key_sample``
        routed updates instead of assuming a bounded prefix, then share
        the resulting table with every shard as above.  Mutually
        exclusive with ``dense_domain``; requires ``use_plan=True``.
    hot_key_sample:
        How many updates to observe before freezing the hot-key set.

    The engine is a context manager; ``close()`` releases worker threads,
    worker processes, and shared-memory segments (idempotent, and
    required for the ``"processes"`` backend).
    """

    def __init__(
        self,
        spec: SketchSpec,
        num_shards: int = 4,
        batch_size: int = 16384,
        executor: str = "threads",
        use_plan: bool = True,
        dense_domain: int | None = None,
        hot_keys: int = 0,
        hot_key_sample: int = 65536,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if executor not in ("serial", "threads", "processes"):
            raise ValueError(
                "executor must be 'serial', 'threads', or 'processes'"
            )
        if dense_domain is not None and dense_domain < 1:
            raise ValueError("dense_domain must be positive")
        if hot_keys < 0:
            raise ValueError("hot_keys must be non-negative")
        if hot_key_sample < 1:
            raise ValueError("hot_key_sample must be positive")
        if dense_domain is not None and hot_keys:
            raise ValueError("pass dense_domain or hot_keys, not both")
        if (dense_domain is not None or hot_keys) and not use_plan:
            raise ValueError("the dense fast path requires use_plan=True")
        self.spec = spec
        self.num_shards = num_shards
        self.executor = executor
        self._use_plan = use_plan
        self._plan_arg = "auto" if use_plan else None
        self._batch_size = batch_size
        self._buffers: dict[tuple[int, str], tuple[list[int], list[int]]] = {}
        self._salts: dict[str, int] = {}
        self._known_streams: set[str] = set()
        self._updates_processed = 0
        self._version = 0  # bumped on any state change; keys merge caches
        self._stats = [_MutableShardStats(shard) for shard in range(num_shards)]
        self._merge_cursor = 0  # round-robin shard for delta merges
        self._deltas_merged = 0
        self._merges = 0
        self._merge_seconds = 0.0
        self._merged: tuple[int, StreamEngine] | None = None
        self._merged_storage: dict[str, SketchFamily] = {}
        self._closed = False

        self._hot_keys = hot_keys
        self._hot_key_sample = hot_key_sample
        self._hot_samples: list[np.ndarray] | None = (
            [] if (hot_keys and use_plan) else None
        )
        self._hot_sampled = 0
        self._dense_segments: list[object] = []

        # serial / threads state: per-shard family maps (disjoint by
        # construction, so the thread backend needs no locks) and
        # per-shard plans — private LRU caches over the shared coins,
        # one shared PlanTimers account (see the use_plan parameter).
        self._families: list[dict[str, SketchFamily]] = [
            {} for _ in range(num_shards)
        ]
        self._plans: list[HashPlan] | None = None
        if use_plan and executor in ("serial", "threads"):
            canonical = plan_for(spec)
            if dense_domain is not None:
                canonical.ensure_dense_domain(dense_domain)
            self._plans = [canonical.sibling() for _ in range(num_shards)]
        self._executors: list[ThreadPoolExecutor] = []
        self._pending: list[list[Future]] = [[] for _ in range(num_shards)]
        if executor == "threads":
            self._executors = [
                ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"repro-shard-{shard}"
                )
                for shard in range(num_shards)
            ]

        # processes state
        self._workers = []
        self._inboxes = []
        self._outbox = None
        self._segments: dict[tuple[int, str], object] = {}
        self._shard_views: dict[tuple[int, str], np.ndarray] = {}
        self._synced_stats: list[ShardStats] | None = None
        self._synced_plan_stats = None
        if executor == "processes":
            self._start_workers()
            if use_plan and dense_domain is not None:
                table = plan_for(spec).ensure_dense_domain(dense_domain)
                self._broadcast_dense(table)

    # -- lifecycle ---------------------------------------------------------

    def _start_workers(self) -> None:
        import multiprocessing

        context = multiprocessing.get_context()
        self._outbox = context.Queue()
        payload = self.spec.to_json_dict()
        for shard in range(self.num_shards):
            inbox = context.Queue()
            worker = context.Process(
                target=_shard_worker,
                args=(shard, payload, self._use_plan, inbox, self._outbox),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            worker.start()
            self._inboxes.append(inbox)
            self._workers.append(worker)

    def close(self) -> None:
        """Release worker threads/processes and shared-memory segments."""
        if self._closed:
            return
        self._closed = True
        for pool in self._executors:
            pool.shutdown(wait=True)
        if self.executor == "processes":
            for inbox in self._inboxes:
                try:
                    inbox.put(("stop",))
                except Exception:  # pragma: no cover
                    pass
            for worker in self._workers:
                worker.join(timeout=10)
                if worker.is_alive():  # pragma: no cover
                    worker.terminate()
            self._shard_views.clear()
            for shm in list(self._segments.values()) + self._dense_segments:
                try:
                    shm.close()
                except BufferError:  # pragma: no cover - caller holds a view
                    pass
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
            self._segments.clear()
            self._dense_segments.clear()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- ingest ------------------------------------------------------------

    def process(self, update: Update) -> None:
        """Ingest one update tuple ``<stream, element, ±delta>``."""
        salt = self._salts.get(update.stream)
        if salt is None:
            salt = _stream_salt(update.stream)
            self._salts[update.stream] = salt
        x = (update.element ^ salt) & _MASK64
        x = (x * _MIX) & _MASK64
        shard = (x ^ (x >> 33)) % self.num_shards
        key = (shard, update.stream)
        buffered = self._buffers.get(key)
        if buffered is None:
            buffered = self._buffers[key] = ([], [])
        elements, deltas = buffered
        elements.append(update.element)
        deltas.append(update.delta)
        self._updates_processed += 1
        self._version += 1
        if len(elements) >= self._batch_size:
            self._dispatch(shard, update.stream)

    def process_many(self, updates: Iterable[Update]) -> None:
        """Ingest a sequence of update tuples."""
        for update in updates:
            self.process(update)

    def process_batch(self, stream: str, elements, deltas=None) -> None:
        """Array ingest: route a whole batch with one vectorised partition.

        ``elements`` (and optional aligned ``deltas``) are routed with
        :func:`shard_vector` and appended to the per-shard buffers —
        equivalent to ``process`` per tuple, minus the Python loop.
        """
        elements = np.asarray(elements, dtype=np.uint64)
        if elements.size == 0:
            return
        if deltas is None:
            deltas = np.ones(elements.shape, dtype=np.int64)
        else:
            deltas = np.asarray(deltas, dtype=np.int64)
            if deltas.shape != elements.shape:
                raise ValueError("deltas must align with elements")
        shards = shard_vector(stream, elements, self.num_shards)
        for shard in range(self.num_shards):
            mask = shards == shard
            if not mask.any():
                continue
            key = (shard, stream)
            buffered = self._buffers.get(key)
            if buffered is None:
                buffered = self._buffers[key] = ([], [])
            buffered[0].extend(int(e) for e in elements[mask])
            buffered[1].extend(int(d) for d in deltas[mask])
            if len(buffered[0]) >= self._batch_size:
                self._dispatch(shard, stream)
        self._updates_processed += int(elements.size)
        self._version += 1

    def flush(self) -> None:
        """Dispatch all buffers and wait until every shard has applied them."""
        for shard, stream in list(self._buffers):
            self._dispatch(shard, stream)
        self._barrier()

    def merge_delta(self, stream: str, delta: SketchFamily) -> None:
        """Fold a delta synopsis into ``stream`` by linearity.

        The network-fold primitive for a coordinator leaf running on a
        sharded engine: incoming
        :class:`~repro.streams.distributed.DeltaExport` payloads are
        counter arrays, not elements, so they cannot be routed by the
        ``(stream, element)`` partitioner — instead each delta lands
        whole on one shard, chosen round-robin so the merge work spreads
        across workers.  Any placement sums to the same merged synopsis
        (linearity), and the per-shard executors serialise the merge
        against in-flight ingest batches for the same shard.  Ownership
        of ``delta`` transfers to the engine.
        """
        if delta.spec != self.spec:
            from repro.errors import IncompatibleSketchesError

            raise IncompatibleSketchesError(
                "delta family does not follow the engine's SketchSpec"
            )
        shard = self._merge_cursor % self.num_shards
        self._merge_cursor += 1
        self._known_streams.add(stream)
        if self.executor == "serial":
            self._merge_apply(shard, stream, delta)
        elif self.executor == "threads":
            pending = self._pending[shard]
            if len(pending) > 32:
                self._pending[shard] = pending = [
                    future for future in pending if not future.done()
                ]
            pending.append(
                self._executors[shard].submit(
                    self._merge_apply, shard, stream, delta
                )
            )
        else:
            self._ensure_segment(shard, stream)
            self._inboxes[shard].put(("merge", stream, delta.to_bytes()))
        self._deltas_merged += 1
        self._version += 1

    def _merge_apply(self, shard: int, stream: str, delta: SketchFamily) -> None:
        """Merge body for the serial/threads backends."""
        families = self._families[shard]
        family = families.get(stream)
        if family is None:
            families[stream] = delta
        else:
            family.merge_in_place(delta)

    # -- dispatch internals ------------------------------------------------

    def _dispatch(self, shard: int, stream: str) -> None:
        buffered = self._buffers.pop((shard, stream), None)
        if not buffered or not buffered[0]:
            return
        elements = np.asarray(buffered[0], dtype=np.uint64)
        deltas = np.asarray(buffered[1], dtype=np.int64)
        self._known_streams.add(stream)
        if self._hot_samples is not None:
            self._observe_hot(elements)
        if self.executor == "serial":
            self._apply(shard, stream, elements, deltas)
        elif self.executor == "threads":
            pending = self._pending[shard]
            if len(pending) > 32:
                self._pending[shard] = pending = [
                    future for future in pending if not future.done()
                ]
            pending.append(
                self._executors[shard].submit(
                    self._apply, shard, stream, elements, deltas
                )
            )
        else:
            self._ensure_segment(shard, stream)
            self._inboxes[shard].put(
                ("batch", stream, elements.tobytes(), deltas.tobytes())
            )

    def _apply(self, shard, stream, elements, deltas) -> None:
        """Maintenance body for the serial/threads backends."""
        families = self._families[shard]
        family = families.get(stream)
        if family is None:
            family = families[stream] = self.spec.build()
        stats = self._stats[shard]
        plan_arg = None if self._plans is None else self._plans[shard]
        started = time.perf_counter()
        applied = family.ingest_batch(elements, deltas, plan=plan_arg)
        stats.flush_seconds += time.perf_counter() - started
        stats.batches_flushed += 1
        stats.updates_routed += int(elements.size)
        stats.updates_applied += applied

    def _ensure_segment(self, shard: int, stream: str) -> None:
        key = (shard, stream)
        if key in self._segments:
            return
        from multiprocessing import shared_memory

        shape = (self.spec.num_sketches,) + self.spec.shape.counter_shape
        nbytes = int(np.prod(shape)) * 8
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        view = np.ndarray(shape, dtype=np.int64, buffer=shm.buf)
        view[:] = 0
        self._segments[key] = shm
        self._shard_views[key] = view
        self._inboxes[shard].put(("register", stream, shm.name))

    # -- dense fast path ---------------------------------------------------

    def _observe_hot(self, elements: np.ndarray) -> None:
        """Sample dispatched elements until the hot-key dictionary freezes.

        Runs on the routing front end (one sampler, whatever the
        backend); once the sample threshold is reached the top
        ``hot_keys`` elements become a dense table, built once on the
        canonical plan and shared with every shard.  Bit-identity is
        untouched — the table only changes which mechanism produces an
        element's index row.
        """
        self._hot_samples.append(elements)
        self._hot_sampled += int(elements.size)
        if self._hot_sampled < self._hot_key_sample:
            return
        sample = np.concatenate(self._hot_samples)
        self._hot_samples = None  # freeze: one learned table per engine
        unique, counts = np.unique(sample, return_counts=True)
        if unique.size > self._hot_keys:
            top = np.argpartition(counts, -self._hot_keys)[-self._hot_keys :]
            unique = unique[top]
        table = plan_for(self.spec).ensure_dense_keys(unique)
        self._share_dense_table(table)

    def _share_dense_table(self, table: DenseScatterTable) -> None:
        """Hand one immutable table to every shard's plan."""
        if self._plans is not None:
            for plan in self._plans:
                plan.attach_dense(table)
        elif self.executor == "processes" and self._use_plan:
            self._broadcast_dense(table)

    def _broadcast_dense(self, table: DenseScatterTable) -> None:
        """Share a dense table with worker processes via shared memory.

        The rows go into one POSIX shm segment every worker maps (the
        table is immutable, so concurrent read-only sharing is safe); the
        key dictionary, when present, is small and travels inline on the
        message queues.  The parent owns the segment's lifetime, like the
        counter segments.
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=table.rows.nbytes)
        view = np.ndarray(table.rows.shape, dtype=table.rows.dtype, buffer=shm.buf)
        np.copyto(view, table.rows)
        del view
        self._dense_segments.append(shm)
        keys_bytes = None if table.keys is None else table.keys.tobytes()
        message = (
            "dense",
            shm.name,
            tuple(table.rows.shape),
            table.rows.dtype.str,
            keys_bytes,
        )
        for inbox in self._inboxes:
            inbox.put(message)

    def _barrier(self) -> None:
        if self.executor == "threads":
            pending = [f for futures in self._pending for f in futures]
            self._pending = [[] for _ in range(self.num_shards)]
            if pending:
                wait(pending)
                for future in pending:
                    future.result()  # re-raise worker failures
        elif self.executor == "processes":
            self._sync_workers()

    def _sync_workers(self) -> None:
        from repro.core.plan import HashPlanStats

        for inbox in self._inboxes:
            inbox.put(("sync",))
        snapshots: dict[int, ShardStats] = {}
        reported: list[HashPlanStats] = []
        failure = None
        while len(snapshots) < self.num_shards:
            kind, shard_id, snapshot, plan_payload, shard_failure = (
                self._outbox.get(timeout=60)
            )
            if kind != "sync":  # pragma: no cover - stop/stray replies
                continue
            snapshots[shard_id] = snapshot
            if plan_payload is not None:
                reported.append(HashPlanStats.from_json_dict(plan_payload))
            if shard_failure is not None and failure is None:
                failure = (shard_id, shard_failure)
        self._synced_stats = [snapshots[s] for s in range(self.num_shards)]
        plan_rollup: HashPlanStats | None = None
        if reported:
            plan_rollup = reported[0]
            for stats in reported[1:]:
                plan_rollup = plan_rollup.merged_with(stats)
            # Each worker's busy clock is a genuine wall-clock (single
            # ingest thread per process), but workers run concurrently —
            # their *sum* is cpu time, not elapsed time.  Report the sum
            # in the cpu fields (merged_with already put it there too)
            # and keep the busy fields a wall-clock-bounded figure: the
            # slowest worker's account, which can never exceed the run's
            # elapsed time.
            plan_rollup = _replace_dataclass(
                plan_rollup,
                hash_seconds=max(s.hash_seconds for s in reported),
                scatter_seconds=max(s.scatter_seconds for s in reported),
            )
        self._synced_plan_stats = plan_rollup
        if failure is not None:
            raise RuntimeError(
                f"shard {failure[0]} worker failed: {failure[1]}"
            )

    # -- queries -----------------------------------------------------------

    def query(
        self,
        expression: SetExpression | str,
        epsilon: float = 0.1,
        pool_levels: int = 1,
        use_cache: bool = True,
    ) -> WitnessEstimate:
        """Estimate ``|E|`` over the merged (all-shard) synopses."""
        return self._merged_engine().query(
            expression, epsilon, pool_levels=pool_levels, use_cache=use_cache
        )

    def query_union(
        self,
        stream_names: Iterable[str],
        epsilon: float = 0.1,
        use_cache: bool = True,
    ) -> UnionEstimate:
        """Estimate the distinct-element count of a union of streams.

        The merged query engine is rebuilt (and its caches dropped) only
        when shard state moved, so between ingest bursts repeat unions are
        served from its version-revalidated cache like any other query.
        """
        return self._merged_engine().query_union(
            stream_names, epsilon, use_cache=use_cache
        )

    def explain(self, expression: SetExpression | str, epsilon: float = 0.1):
        """Per-subexpression cardinality breakdown over merged synopses."""
        return self._merged_engine().explain(expression, epsilon)

    # -- introspection -----------------------------------------------------

    @property
    def updates_processed(self) -> int:
        return self._updates_processed

    def stream_names(self) -> list[str]:
        """Streams with shard state or buffered updates."""
        buffered = {stream for _, stream in self._buffers}
        return sorted(self._known_streams | buffered)

    @property
    def deltas_merged(self) -> int:
        """How many delta synopses :meth:`merge_delta` has folded in."""
        return self._deltas_merged

    def family(self, stream: str) -> SketchFamily:
        """The merged synopsis for ``stream`` (flushed and summed).

        The returned family is a snapshot: it stays valid, but stops
        tracking the engine once further updates arrive.
        """
        return self._merged_engine().family(stream)

    def families(self) -> dict[str, SketchFamily]:
        """Flushed ``stream -> merged synopsis`` mapping.

        Same hand-off surface as
        :meth:`~repro.streams.engine.StreamEngine.families` — delta
        export (an uplink :class:`~repro.streams.distributed.StreamSite`
        over this engine) and checkpointing read the merged view here.
        The families reuse the engine's merge buffers: they reflect the
        state as of this call and are overwritten by the next merge, so
        callers needing a stable snapshot must ``copy()``.
        """
        return self._merged_engine().families()

    def query_stats(self):
        """Query-cache counters of the current merged query engine.

        Returns a :class:`~repro.streams.stats.QueryStats` snapshot.  The
        counters cover the *current* merged engine only — they restart
        whenever shard state moves and the query facade is rebuilt.
        """
        return self._merged_engine().query_stats()

    def shard_families(self, stream: str) -> list[SketchFamily]:
        """Per-shard synopses for ``stream`` (flushed; empty shards skipped)."""
        self.flush()
        return [
            family
            for _, family in sorted(self._iter_shard_families(stream))
        ]

    def synopsis_bytes(self) -> int:
        """Total bytes of maintained counters, summed across all shards."""
        if self.executor == "processes":
            return sum(view.nbytes for view in self._shard_views.values())
        return sum(
            family.counters.nbytes
            for families in self._families
            for family in families.values()
        )

    def stats(self) -> IngestStats:
        """Per-shard ingest metrics plus merge and hash-plan counters.

        The plan roll-up sums cache counters (hits, misses, evictions,
        entries, capacity) across the per-shard plans, while its
        ``hash_seconds``/``scatter_seconds`` stay wall-clock-honest:
        the in-process backends read them once from the plans' shared
        :class:`~repro.core.plan.PlanTimers` (concurrent shard threads
        extend one de-overlapped busy interval), and the ``"processes"``
        backend reports the slowest worker's clock.  Either way the busy
        figures can never exceed the run's elapsed time; the summed
        per-thread work lives in ``hash_cpu_seconds`` /
        ``scatter_cpu_seconds``.  For ``"processes"`` the rows reflect
        the last synchronisation point (``flush()`` or any query); the
        serial and thread backends report live counters.
        """
        if self.executor == "processes":
            shard_rows = self._synced_stats or [
                ShardStats(shard_id=shard) for shard in range(self.num_shards)
            ]
            plan_stats = self._synced_plan_stats
        else:
            shard_rows = [
                stats.snapshot(len(self._families[stats.shard_id]))
                for stats in self._stats
            ]
            plan_stats = None
            if self._plans is not None:
                snapshots = [plan.stats() for plan in self._plans]
                plan_stats = snapshots[0]
                for snapshot in snapshots[1:]:
                    plan_stats = plan_stats.merged_with(snapshot)
                # Every sibling reports the same shared timer account, so
                # the merge multiplied the time fields (and summed the
                # one shared dense table) — take them once instead.
                hash_busy, scatter_busy, hash_cpu, scatter_cpu = (
                    self._plans[0].timers.snapshot()
                )
                plan_stats = _replace_dataclass(
                    plan_stats,
                    hash_seconds=hash_busy,
                    scatter_seconds=scatter_busy,
                    hash_cpu_seconds=hash_cpu,
                    scatter_cpu_seconds=scatter_cpu,
                    dense_entries=snapshots[0].dense_entries,
                )
        return IngestStats(
            shards=tuple(shard_rows),
            merges=self._merges,
            merge_seconds=self._merge_seconds,
            plan=plan_stats,
        )

    # -- checkpoint / hand-off --------------------------------------------

    def adopt_family(self, stream: str, family: SketchFamily) -> None:
        """Install a pre-built synopsis for ``stream`` (checkpoint restore).

        The whole family lands on the shard the partitioner would least
        expect — shard 0 — which is harmless: by linearity any placement
        of counters across shards sums to the same merged synopsis, and
        future updates still route by ``(stream, element)``.
        """
        self.adopt_shard_family(0, stream, family)
        for shard in range(1, self.num_shards):
            self._clear_shard_stream(shard, stream)

    def adopt_shard_family(
        self, shard: int, stream: str, family: SketchFamily
    ) -> None:
        """Install state for one ``(shard, stream)`` slice (sharded restore)."""
        if not (0 <= shard < self.num_shards):
            raise ValueError("shard index out of range")
        if family.spec != self.spec:
            from repro.errors import IncompatibleSketchesError

            raise IncompatibleSketchesError(
                "adopted family does not follow the engine's SketchSpec"
            )
        self.flush()  # settle in-flight batches before overwriting state
        self._buffers.pop((shard, stream), None)
        self._known_streams.add(stream)
        if self.executor == "processes":
            self._ensure_segment(shard, stream)
            self._sync_workers()  # make sure the worker attached first
            np.copyto(self._shard_views[(shard, stream)], family.counters)
        else:
            self._families[shard][stream] = family.copy()
        self._version += 1

    def _clear_shard_stream(self, shard: int, stream: str) -> None:
        self._buffers.pop((shard, stream), None)
        if self.executor == "processes":
            view = self._shard_views.get((shard, stream))
            if view is not None:
                view[:] = 0
        else:
            self._families[shard].pop(stream, None)

    def mark_replayed(self, num_updates: int) -> None:
        """Record updates applied before this engine existed (restores)."""
        if num_updates < 0:
            raise ValueError("num_updates must be non-negative")
        self._updates_processed += num_updates
        self._version += 1

    def merged_engine(self, batch_size: int | None = None) -> StreamEngine:
        """A single-process :class:`StreamEngine` over the merged synopses.

        The hand-off path: the returned engine owns independent counter
        copies and can keep ingesting on its own.
        """
        merged = self._merged_engine()
        engine = StreamEngine(
            self.spec, batch_size=batch_size or self._batch_size
        )
        for stream in merged.stream_names():
            engine.adopt_family(stream, merged.family(stream).copy())
        engine.mark_replayed(self._updates_processed)
        return engine

    # -- merge internals ---------------------------------------------------

    def _iter_shard_families(self, stream: str):
        if self.executor == "processes":
            for (shard, name), view in self._shard_views.items():
                if name == stream:
                    yield shard, SketchFamily(self.spec, view)
        else:
            for shard, families in enumerate(self._families):
                family = families.get(stream)
                if family is not None:
                    yield shard, family

    def _merged_engine(self) -> StreamEngine:
        """The query facade: an engine adopting per-stream shard sums.

        Rebuilt only when the version counter moved; merged counter
        storage is reused across rebuilds (``sum_families(out=...)``), so
        steady-state queries allocate nothing.
        """
        self.flush()
        if self._merged is not None and self._merged[0] == self._version:
            return self._merged[1]
        started = time.perf_counter()
        engine = StreamEngine(self.spec, batch_size=self._batch_size)
        for stream in self.stream_names():
            parts = [family for _, family in self._iter_shard_families(stream)]
            if not parts:
                continue
            out = self._merged_storage.get(stream)
            merged = sum_families(parts, out=out)
            self._merged_storage[stream] = merged
            engine.adopt_family(stream, merged)
        engine.mark_replayed(self._updates_processed)
        self._merges += 1
        self._merge_seconds += time.perf_counter() - started
        self._merged = (self._version, engine)
        return engine
