"""Ablation: expression width (number of streams n) — Theorem 4.1.

The set-expression space bound carries an ``n`` factor: wider expressions
need more sketches for the same accuracy.  This bench fixes the sketch
budget and target ratio |E|/u and grows the expression from 2 to 4
streams, reporting the trimmed error per width.
"""

from __future__ import annotations

import numpy as np
from _common import build_families

from repro.core.expression import estimate_expression
from repro.datagen.controlled import generate_controlled
from repro.experiments.metrics import relative_error, trimmed_mean_error

EXPRESSIONS = (
    "A & B",
    "(A - B) & C",
    "((A - B) & C) | (A & D)",
)
NUM_SKETCHES = 192
TRIALS = 5


def run_depth_sweep():
    rows = []
    for text in EXPRESSIONS:
        errors = []
        for trial in range(TRIALS):
            rng = np.random.default_rng([5000, len(text), trial])
            dataset = generate_controlled(text, 4096, 0.25, rng, domain_bits=24)
            families = build_families(dataset, NUM_SKETCHES, seed=trial)
            truth = dataset.target_size
            estimate = estimate_expression(text, families, 0.1)
            errors.append(relative_error(estimate.value, truth))
        width = len(set(text) & set("ABCD"))
        rows.append((text, width, trimmed_mean_error(errors)))
    return rows


def test_expression_width(benchmark):
    rows = benchmark.pedantic(run_depth_sweep, rounds=1, iterations=1)
    print()
    print(f"Expression-width ablation at r={NUM_SKETCHES}, |E|/u = 0.25")
    print(f"{'expression':>28s} {'streams':>8s} {'trimmed error':>14s}")
    for text, width, error in rows:
        print(f"{text:>28s} {width:8d} {100 * error:13.1f}%")
    print("paper: Theorem 4.1 carries an n factor — wider expressions need")
    print("       more synopsis space for equal accuracy")

    # All widths must produce usable estimates at this fixed ratio.
    for _, _, error in rows:
        assert error < 0.6
